"""Authoritative nameservers, including a faithful pool.ntp.org model.

pool.ntp.org behaviour that matters to the reproduction:

* each response to an A query carries **4** addresses drawn from a large,
  rotating set of volunteer NTP servers (this is why Chronos needs 24 hourly
  queries to accumulate ~96 servers);
* the records have a short TTL (150 seconds in the real zone), so each hourly
  Chronos query is a cache miss and reaches the authoritative server again;
* per the paper's companion measurement ([3]), 16 of the 30 pool.ntp.org
  nameservers are willing to fragment their responses down to a 548-byte MTU
  and do not serve DNSSEC — the combination the fragmentation-poisoning
  vector requires.  Fragmentation behaviour is configured via the network's
  per-source path MTU; the DNSSEC flag lives here.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import replace
from typing import Optional

from ..netsim.network import Host, Network
from ..netsim.packets import UDPDatagram
from .message import DNSMessage, ResponseCode
from .records import RecordType, a_record, signature_record
from .wire import normalise_name

DNS_PORT = 53
#: TTL used by the real pool.ntp.org zone for A records.
POOL_NTP_ORG_TTL = 150
#: Number of A records per pool.ntp.org response.
POOL_RECORDS_PER_RESPONSE = 4


class ResponseRateLimiter:
    """BIND-style response-rate limiting (RRL) for UDP answers.

    Token bucket per source *prefix* (default /24, matching BIND's
    ``responses-per-second`` aggregation): each UDP response costs one
    token; buckets refill at ``rate`` tokens per second up to ``burst``.
    When a bucket is empty the response is normally **dropped**, except:

    * every ``slip``-th suppressed response goes out *truncated* (TC=1,
      empty sections) instead — small, unspoofable-to-amplify, and it
      tells a legitimate resolver to retry over TCP where RRL does not
      apply.  ``slip=0`` disables slipping (pure drops).
    * every ``leak``-th suppressed response escapes at full size
      (BIND's ``leak-rate`` escape hatch for lossy paths).  ``leak=0``
      — the default — never leaks.

    Entirely deterministic: no RNG, state is a pure function of the
    response timeline, so digests are identical across worker counts.
    Stream (TCP/DoT/DoH) responses are never limited — that asymmetry is
    the point: a throttled resolver falls back to the transport an
    off-path attacker cannot race.
    """

    def __init__(self, rate: float = 1.0, burst: int = 2, slip: int = 2,
                 leak: int = 0, prefix_len: int = 24) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.slip = int(slip)
        self.leak = int(leak)
        self.prefix_len = int(prefix_len)
        #: prefix -> (tokens, last-refill timestamp)
        self._buckets: dict[str, tuple[float, float]] = {}
        #: prefix -> suppressed-response count (drives slip/leak cadence)
        self._suppressed: dict[str, int] = {}
        self.responses_allowed = 0
        self.responses_dropped = 0
        self.responses_slipped = 0
        self.responses_leaked = 0

    def _prefix(self, address: str) -> str:
        octets = address.split(".")
        keep = max(1, min(len(octets), self.prefix_len // 8))
        return ".".join(octets[:keep]) + f"/{self.prefix_len}"

    @property
    def leak_ratio(self) -> float:
        """Fraction of over-limit responses that escaped at full size."""
        suppressed = self.responses_dropped + self.responses_slipped + self.responses_leaked
        return self.responses_leaked / suppressed if suppressed else 0.0

    def check(self, address: str, now: float) -> str:
        """Classify one UDP response: ``"send"``, ``"slip"`` or ``"drop"``."""
        prefix = self._prefix(address)
        tokens, last = self._buckets.get(prefix, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens >= 1.0:
            self._buckets[prefix] = (tokens - 1.0, now)
            self.responses_allowed += 1
            return "send"
        self._buckets[prefix] = (tokens, now)
        count = self._suppressed.get(prefix, 0) + 1
        self._suppressed[prefix] = count
        if self.leak and count % self.leak == 0:
            self.responses_leaked += 1
            return "send"
        if self.slip and count % self.slip == 0:
            self.responses_slipped += 1
            return "slip"
        self.responses_dropped += 1
        return "drop"


class AuthoritativeNameserver(Host):
    """A simple authoritative server answering A queries from a static zone."""

    def __init__(self, network: Network, address: str, zone: dict[str, list[str]],
                 ttl: int = 300, name: Optional[str] = None, dnssec: bool = False,
                 zone_key: Optional[str] = None,
                 udp_payload_limit: Optional[int] = None) -> None:
        super().__init__(network, address, name=name or f"ns-{address}")
        self.zone = {normalise_name(owner): list(addresses) for owner, addresses in zone.items()}
        self.ttl = ttl
        self.dnssec = dnssec
        #: When set, every answer RRset is signed (appended signature record);
        #: provisioned by the ``response_signing`` defense via the testbed.
        self.zone_key = zone_key
        #: Largest UDP response payload this server sends (``None`` = no
        #: limit).  Responses that would exceed it go out *truncated* —
        #: empty answer section, TC=1 — telling the resolver to retry over a
        #: stream transport.  Stream (TCP/DoT/DoH) responses never truncate.
        self.udp_payload_limit = udp_payload_limit
        #: Stream listeners, when attached (see ``repro.dns.transport``).
        self.stream_transport = None
        #: UDP response-rate limiter, when attached (the
        #: ``response_rate_limit`` defense); ``None`` = unlimited.
        self.rate_limiter: Optional[ResponseRateLimiter] = None
        self.queries_received = 0
        self.responses_sent = 0
        self.truncated_responses = 0

    # -- zone management -----------------------------------------------------
    def add_records(self, owner: str, addresses: Sequence[str]) -> None:
        self.zone.setdefault(normalise_name(owner), []).extend(addresses)

    def records_for(self, owner: str) -> list[str]:
        return self.zone.get(normalise_name(owner), [])

    # -- answering -------------------------------------------------------------
    def select_addresses(self, owner: str) -> list[str]:
        """Which addresses to include in a response (all of them, by default)."""
        return self.records_for(owner)

    def answer_query(self, query: DNSMessage) -> DNSMessage:
        """Build the authoritative response to one query (any transport).

        ``make_response`` echoes the query's transaction id, question case
        pattern and cookie, so hardening defenses validate identically over
        UDP and over the stream transports.
        """
        addresses = self.select_addresses(query.question.name)
        if addresses and query.question.qtype == RecordType.A:
            answers = [a_record(query.question.name, address, self.ttl) for address in addresses]
            if self.zone_key is not None:
                # The signature travels at the end of the answer section —
                # in the trailing fragment of a fragmented response, exactly
                # where the defragmentation attacker splices.
                answers.append(signature_record(self.zone_key, query.question.name, answers))
            return query.make_response(answers)
        return query.make_response([], rcode=ResponseCode.NXDOMAIN)

    def handle_datagram(self, datagram: UDPDatagram) -> None:
        if datagram.dst_port != DNS_PORT:
            return
        try:
            query = DNSMessage.decode(datagram.payload)
        except Exception:
            return
        if query.is_response:
            return
        self.queries_received += 1
        obs = self.network.simulator.obs
        if obs.enabled:
            obs.metrics.counter("ns.queries_received").inc()
        response = self.answer_query(query)
        if (self.udp_payload_limit is not None
                and response.wire_size > self.udp_payload_limit):
            # The answer does not fit the UDP budget: send a truncated stub
            # (TC=1, empty sections) instead of an oversized datagram.  This
            # is what keeps the fragmentation-attack size knobs meaningful —
            # a server with a payload limit never emits the fragmenting
            # response the splice needs.
            oversized = response.wire_size
            response = replace(response, answers=(), authority=(), truncated=True)
            self.truncated_responses += 1
            if obs.enabled:
                obs.metrics.counter("ns.responses_truncated").inc()
                obs.trace.instant("ns.truncated", category="dns",
                                  qname=normalise_name(query.question.name),
                                  txid=query.transaction_id,
                                  server=self.address,
                                  wire_size=oversized)
        if self.rate_limiter is not None:
            # RRL applies to UDP answers only — a stream response already
            # proved the client's address with a handshake, and the TC=1
            # slip below is precisely the nudge toward that stream.
            verdict = self.rate_limiter.check(
                datagram.src_ip, self.network.simulator.now)
            if verdict != "send":
                if obs.enabled:
                    obs.metrics.counter("ns.rrl", verdict=verdict).inc()
                if verdict == "drop":
                    return
                response = replace(response, answers=(), authority=(),
                                   truncated=True)
        self.responses_sent += 1
        if obs.enabled:
            obs.metrics.counter("ns.responses_sent",
                                truncated=response.truncated).inc()
        self.send_datagram(
            UDPDatagram(
                src_ip=self.address,
                dst_ip=datagram.src_ip,
                src_port=DNS_PORT,
                dst_port=datagram.src_port,
                payload=response.encode(),
            )
        )


class PoolNTPNameserver(AuthoritativeNameserver):
    """Authoritative server for ``pool.ntp.org`` with rotation.

    Each query is answered with ``records_per_response`` servers chosen
    uniformly at random (without replacement within a response) from the
    volunteer pool, mimicking the real zone's GeoDNS rotation.  Selection
    uses the simulator RNG so pool-generation experiments are reproducible.
    """

    def __init__(self, network: Network, address: str, zone_name: str,
                 pool_servers: Sequence[str],
                 records_per_response: int = POOL_RECORDS_PER_RESPONSE,
                 ttl: int = POOL_NTP_ORG_TTL,
                 name: Optional[str] = None,
                 dnssec: bool = False,
                 min_supported_mtu: int = 1500,
                 zone_key: Optional[str] = None,
                 udp_payload_limit: Optional[int] = None) -> None:
        zone = {zone_name: list(pool_servers)}
        super().__init__(network, address, zone=zone, ttl=ttl,
                         name=name or f"pool-ns-{address}", dnssec=dnssec,
                         zone_key=zone_key, udp_payload_limit=udp_payload_limit)
        self.zone_name = normalise_name(zone_name)
        self.pool_servers = list(pool_servers)
        self.records_per_response = records_per_response
        #: Smallest MTU this nameserver is willing to fragment responses to,
        #: mirroring the per-nameserver measurement in the paper ([3] found
        #: 16/30 fragmenting down to 548 bytes).
        self.min_supported_mtu = min_supported_mtu

    def matches_zone(self, owner: str) -> bool:
        """Accept the zone apex and the numbered sub-pools (0..3.pool.ntp.org)."""
        owner = normalise_name(owner)
        return owner == self.zone_name or owner.endswith("." + self.zone_name)

    def select_addresses(self, owner: str) -> list[str]:
        if not self.matches_zone(owner):
            return []
        count = min(self.records_per_response, len(self.pool_servers))
        return self.network.simulator.rng.sample(self.pool_servers, count)
