"""Encrypted and stream DNS transports: DNS-over-TCP, DoT and DoH.

The paper positions encrypted transports as the countermeasure *class* that
removes both off-path poisoning vectors — a blind spoofer cannot inject into
a sequence-checked stream, and a hijacker who diverts the packets cannot
complete a TLS handshake for an identity it holds no certificate for — at
the cost of a changed trust model.  This module provides both halves:

* **server side** — :class:`DNSServerTransport` attaches stream listeners to
  an :class:`~repro.dns.nameserver.AuthoritativeNameserver`: plain
  DNS-over-TCP on 53 (RFC 7766, the TC-bit fallback target), DoT on 853
  (RFC 7858) and DoH on 443 (RFC 8484, modelled as ``POST /dns-query`` over
  the secure channel).  Stream responses are never truncated — that is the
  entire point of the TC bit.
* **resolver side** — :class:`ResolverUpstreamTransport` manages how a
  recursive resolver reaches its upstream nameservers: plain UDP (the
  default, and the paper's attack surface), a one-shot plain-TCP retry when
  a UDP response comes back truncated, or an
  :class:`EncryptedTransportPolicy` that routes queries over DoT/DoH —
  *strict* (never fall back; resolution fails rather than degrade) or
  *opportunistic* (fall back to plaintext UDP when the encrypted transport
  fails, remembering the failure for ``holddown`` seconds).  Opportunistic
  mode is deliberately exploitable: an attacker who can make the encrypted
  connection fail — a spoofed-source SYN flood on the nameserver's
  listeners, or a hijack that blackholes port 853 — pushes the resolver
  back onto UDP and then runs the classic poisoning race.  See
  :mod:`repro.attacks.downgrade`.

Framing is the real wire format: stream DNS messages carry the RFC 1035
two-byte length prefix; DoH wraps the same wire bytes in a minimal HTTP/1.1
exchange.  By default one connection serves one query — the handshake cost
per query is exactly what ``benchmarks/bench_encrypted_transport.py``
measures against the UDP baseline.  The high-QPS serving layer is opt-in
via :class:`EncryptedTransportPolicy` knobs:

* ``reuse_connections`` keeps a per-(nameserver, protocol) pool of live
  streams with RFC 7766 §6.2 out-of-order pipelining — responses are
  demultiplexed by message ID + question name, so many queries share one
  handshake and answers may return in any order (:class:`PooledConnection`).
  An idle timeout closes quiet streams; a mid-pipeline reset re-dispatches
  the orphaned queries over a fresh connection (bounded retries), which is
  what keeps fault-plan runs honest.
* ``zero_rtt`` adds QUIC-flavoured session resumption: the first handshake
  yields a ticket, later connections put the resumption hello *and* the
  encrypted query on the SYN itself (TFO-style), collapsing DoT's extra
  round trips to UDP parity on warm paths — at the faithful cost that
  0-RTT early data is replayable unless the server burns tickets.

``benchmarks/bench_serving_throughput.py`` measures all three paths.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Optional

from ..netsim.packets import UDPDatagram
from ..netsim.transport import (
    Connection,
    PlainStreamSocket,
    ResumptionTicketStore,
    SecureChannel,
    SessionTicket,
    StreamSocket,
)
from .message import DNSMessage
from .nameserver import DNS_PORT, AuthoritativeNameserver
from .wire import normalise_name

if TYPE_CHECKING:
    from .resolver import PendingUpstreamQuery, RecursiveResolver

#: RFC 7858: DNS-over-TLS port.
DOT_PORT = 853
#: RFC 8484: DNS-over-HTTPS port.
DOH_PORT = 443

#: Transport names accepted by :class:`DNSServerTransport` and the testbed.
STREAM_TRANSPORTS = ("tcp", "dot", "doh")


def frame_dns(wire: bytes) -> bytes:
    """Prefix a DNS message with the RFC 1035 two-byte length."""
    return len(wire).to_bytes(2, "big") + wire


class DNSFrameDecoder:
    """Reassembles length-prefixed DNS messages from stream chunks."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        messages: list[bytes] = []
        while len(self._buffer) >= 2:
            length = int.from_bytes(self._buffer[:2], "big")
            if len(self._buffer) < 2 + length:
                break
            messages.append(bytes(self._buffer[2:2 + length]))
            del self._buffer[:2 + length]
        return messages


def doh_request(wire: bytes) -> bytes:
    """A minimal RFC 8484 POST carrying one DNS message."""
    header = (f"POST /dns-query HTTP/1.1\r\n"
              f"content-type: application/dns-message\r\n"
              f"content-length: {len(wire)}\r\n\r\n")
    return header.encode("ascii") + wire


def doh_response(wire: bytes) -> bytes:
    header = (f"HTTP/1.1 200 OK\r\n"
              f"content-type: application/dns-message\r\n"
              f"content-length: {len(wire)}\r\n\r\n")
    return header.encode("ascii") + wire


class DoHMessageDecoder:
    """Extracts DNS message bodies from a stream of HTTP/1.1 messages."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        messages: list[bytes] = []
        while True:
            head_end = self._buffer.find(b"\r\n\r\n")
            if head_end < 0:
                break
            head = bytes(self._buffer[:head_end]).decode("ascii", errors="replace")
            length = 0
            for line in head.split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body_start = head_end + 4
            if len(self._buffer) < body_start + length:
                break
            messages.append(bytes(self._buffer[body_start:body_start + length]))
            del self._buffer[:body_start + length]
        return messages


# -- server side ---------------------------------------------------------------


class DNSServerTransport:
    """Stream listeners (TCP 53 / DoT 853 / DoH 443) for a nameserver.

    Each accepted connection gets its own framing decoder; every decoded
    query is answered through the nameserver's ``answer_query`` — the same
    logic as UDP, so cookies, 0x20 case patterns and signatures are echoed
    identically — and stream responses are never truncated.
    """

    def __init__(self, nameserver: AuthoritativeNameserver,
                 transports: tuple[str, ...] = ("tcp",),
                 cert_key: Optional[str] = None,
                 identity: Optional[str] = None,
                 backlog: Optional[int] = None,
                 session_resumption: bool = False,
                 single_use_tickets: bool = False) -> None:
        unknown = set(transports) - set(STREAM_TRANSPORTS)
        if unknown:
            raise ValueError(f"unknown stream transport(s): {sorted(unknown)}; "
                             f"supported: {STREAM_TRANSPORTS}")
        if ("dot" in transports or "doh" in transports) and cert_key is None:
            raise ValueError("encrypted transports need a certificate key")
        self.nameserver = nameserver
        self.transports = tuple(transports)
        self.cert_key = cert_key
        self.identity = identity
        #: Session cache for 0-RTT resumption; ``None`` keeps the handshake
        #: path (and its RNG draws) exactly as before, which is what holds
        #: the pinned digests with the serving layer merged.
        self.ticket_store = (ResumptionTicketStore(single_use=single_use_tickets)
                             if session_resumption else None)
        self.queries_answered: dict[str, int] = {name: 0 for name in transports}
        kwargs = {} if backlog is None else {"backlog": backlog}
        secure_kwargs = dict(kwargs, fast_open=session_resumption)
        stack = nameserver.tcp
        if "tcp" in transports:
            self.tcp_listener = stack.listen(
                DNS_PORT, lambda conn: self._serve_plain(conn, "tcp"), **kwargs)
        if "dot" in transports:
            self.dot_listener = stack.listen(
                DOT_PORT, lambda conn: self._serve_secure(conn, "dot"),
                **secure_kwargs)
        if "doh" in transports:
            self.doh_listener = stack.listen(
                DOH_PORT, lambda conn: self._serve_secure(conn, "doh"),
                **secure_kwargs)
        nameserver.stream_transport = self

    def _rng(self):
        return self.nameserver.network.simulator.rng

    def _serve_plain(self, connection: Connection, label: str) -> None:
        self._attach(PlainStreamSocket(connection), label)

    def _serve_secure(self, connection: Connection, label: str) -> None:
        channel = SecureChannel.server(
            connection, self._rng(),
            identity=self.identity or self.nameserver.name,
            cert_key=self.cert_key,
            ticket_store=self.ticket_store)
        self._attach(channel, label)

    def _attach(self, socket: StreamSocket, label: str) -> None:
        decoder = DoHMessageDecoder() if label == "doh" else DNSFrameDecoder()

        def on_data(data: bytes, socket=socket, decoder=decoder, label=label):
            for wire in decoder.feed(data):
                try:
                    query = DNSMessage.decode(wire)
                except Exception:  # noqa: PERF203 — per-frame garbage tolerance
                    continue
                if query.is_response:
                    continue
                self.nameserver.queries_received += 1
                response = self.nameserver.answer_query(query)
                self.nameserver.responses_sent += 1
                self.queries_answered[label] += 1
                encoded = response.encode()
                socket.send(doh_response(encoded) if label == "doh"
                            else frame_dns(encoded))

        socket.on_data = on_data


# -- resolver side -------------------------------------------------------------


class EncryptedTransportPolicy:
    """How a resolver uses encrypted upstream transports.

    ``strict`` resolvers never speak plaintext: when the encrypted transport
    fails, the query fails (and the off-path attacker gets nothing).
    Opportunistic resolvers prefer encryption but fall back to plaintext UDP
    on failure, remembering the failed nameserver for ``holddown`` seconds —
    the RFC 7435 trade-off whose downgrade-ability
    :mod:`repro.attacks.downgrade` makes measurable.
    """

    def __init__(self, protocol: str = "dot", strict: bool = True,
                 connect_timeout: float = 1.0, holddown: float = 600.0,
                 reuse_connections: bool = False, idle_timeout: float = 30.0,
                 zero_rtt: bool = False) -> None:
        if protocol not in ("dot", "doh"):
            raise ValueError(f"unknown encrypted protocol {protocol!r}")
        self.protocol = protocol
        self.strict = strict
        self.connect_timeout = connect_timeout
        self.holddown = holddown
        #: RFC 7766 §6.2 — keep upstream streams open and pipeline queries.
        self.reuse_connections = reuse_connections
        #: Seconds a pooled stream may sit with nothing in flight.
        self.idle_timeout = idle_timeout
        #: Resume with a session ticket and send the query as 0-RTT early
        #: data on the SYN (requires the nameserver to enable resumption).
        self.zero_rtt = zero_rtt

    @property
    def port(self) -> int:
        return DOT_PORT if self.protocol == "dot" else DOH_PORT

    @property
    def pooled(self) -> bool:
        """Whether queries route through the connection pool."""
        return self.reuse_connections or self.zero_rtt


class PooledConnection:
    """One reusable upstream stream carrying pipelined queries.

    RFC 7766 §6.2: multiple queries may be in flight on one connection and
    the server may answer them in any order, so responses are matched back
    to their query by message ID + question name rather than by arrival
    order.  The connection closes itself after ``idle_timeout`` seconds with
    nothing in flight; a reset or failure hands the in-flight queries back
    to the transport for re-dispatch over a fresh connection.
    """

    def __init__(self, transport: ResolverUpstreamTransport, address: str,
                 protocol: str, socket: StreamSocket,
                 idle_timeout: float) -> None:
        self.transport = transport
        self.address = address
        self.protocol = protocol
        self.socket = socket
        self.idle_timeout = idle_timeout
        self.decoder = (DoHMessageDecoder() if protocol == "doh"
                        else DNSFrameDecoder())
        #: (transaction id, qname) -> pending query awaiting its response.
        self.in_flight: dict[tuple[int, str], PendingUpstreamQuery] = {}
        self._send_queue: list[bytes] = []
        self.closed = False
        #: True when this connection was opened via 0-RTT resumption.
        self.resumed = False
        self.opened_at = transport._simulator.now
        self.queries_sent = 0
        self.max_in_flight = 0
        self._idle_deadline: Optional[float] = None
        socket.on_ready = self._flush
        socket.on_data = self._on_data
        socket.on_close = lambda: self._lost("closed by peer")
        socket.on_failure = self._lost

    # -- sending ---------------------------------------------------------------
    def adopt(self, key: tuple[int, str], pending: PendingUpstreamQuery) -> None:
        """Track a query whose bytes already left (the 0-RTT first flight)."""
        self._idle_deadline = None
        self.in_flight[key] = pending
        self.queries_sent += 1
        self.max_in_flight = max(self.max_in_flight, len(self.in_flight))

    def send_query(self, key: tuple[int, str],
                   pending: PendingUpstreamQuery) -> None:
        self.adopt(key, pending)
        wire = pending.upstream_query.encode()
        request = (doh_request(wire) if self.protocol == "doh"
                   else frame_dns(wire))
        if self.socket.ready:
            self.socket.send(request)
        else:
            self._send_queue.append(request)

    def _flush(self) -> None:
        queued, self._send_queue = self._send_queue, []
        for request in queued:
            self.socket.send(request)

    # -- receiving -------------------------------------------------------------
    def _on_data(self, data: bytes) -> None:
        for wire in self.decoder.feed(data):
            try:
                response = DNSMessage.decode(wire)
            except Exception:  # noqa: PERF203 — per-frame garbage tolerance
                continue
            key = (response.transaction_id,
                   normalise_name(response.question.name))
            pending = self.in_flight.pop(key, None)
            if pending is None:
                continue  # not ours (stale or duplicate) — keep the stream
            if not self.in_flight:
                self._arm_idle_timer()
            self.transport._deliver(pending, response, wire)

    # -- idle lifecycle ----------------------------------------------------------
    def _arm_idle_timer(self) -> None:
        deadline = self.transport._simulator.now + self.idle_timeout
        self._idle_deadline = deadline
        self.transport._simulator.schedule(self.idle_timeout, self._check_idle)

    def _check_idle(self) -> None:
        # A query dispatched since the timer was armed disarms the deadline;
        # the timer for *its* quiet period is armed when it completes.
        if self.closed or self.in_flight or self._idle_deadline is None:
            return
        if self.transport._simulator.now >= self._idle_deadline:
            self.close("idle timeout")

    def close(self, reason: str = "closed") -> None:
        if self.closed:
            return
        self.closed = True
        self.transport._connection_gone(self, reason, redispatch=False)
        self.socket.close()

    def _lost(self, reason: str = "connection lost") -> None:
        """The stream died under us — possibly with queries in flight."""
        if self.closed:
            return
        self.closed = True
        self.transport._connection_gone(self, reason, redispatch=True)


class ResolverUpstreamTransport:
    """Per-resolver manager for stream-based upstream queries.

    Every resolver owns one (created lazily for the TC-bit retry); the
    ``encrypted_transport`` defense attaches one with an
    :class:`EncryptedTransportPolicy` so upstream queries travel over
    DoT/DoH instead of UDP.
    """

    def __init__(self, resolver: RecursiveResolver,
                 policy: Optional[EncryptedTransportPolicy] = None,
                 trust_anchor: Optional[str] = None,
                 expected_identity: Optional[str] = None) -> None:
        self.resolver = resolver
        self.policy = policy
        self.trust_anchor = trust_anchor
        self.expected_identity = expected_identity
        #: nameserver address -> simulated time until which the resolver
        #: speaks plaintext to it (opportunistic downgrade hold-down).
        self._plaintext_until: dict[str, float] = {}
        #: (nameserver address, protocol) -> live pooled stream.
        self._pool: dict[tuple[str, str], PooledConnection] = {}
        #: nameserver address -> cached resumption ticket for 0-RTT opens.
        self._tickets: dict[str, SessionTicket] = {}
        self.encrypted_queries = 0
        self.encrypted_failures = 0
        #: Queries an opportunistic policy pushed back to plaintext UDP.
        self.downgraded_queries = 0
        #: Plain-TCP retries triggered by truncated UDP responses.
        self.tcp_retries = 0
        # Connection-churn accounting: the reuse win in numbers.
        self.connections_opened = 0
        self.connections_reused = 0
        #: Fresh connections opened to replace one that died mid-pipeline.
        self.reconnects = 0
        #: Queries sent as 0-RTT early data on the SYN.
        self.zero_rtt_queries = 0
        #: High-water mark of pipelined queries in flight on one stream.
        self.pipelined_max_in_flight = 0

    # -- helpers ---------------------------------------------------------------
    @property
    def _simulator(self):
        return self.resolver.network.simulator

    def uses_encrypted(self, nameserver_address: str) -> bool:
        """Whether the next query to this nameserver goes over DoT/DoH."""
        if self.policy is None:
            return False
        if self.policy.strict:
            return True
        return self._plaintext_until.get(nameserver_address, 0.0) <= self._simulator.now

    # -- dispatch ----------------------------------------------------------------
    def dispatch(self, key: tuple[int, str], pending: PendingUpstreamQuery) -> None:
        """Send one upstream query per the policy (called by the resolver)."""
        if self.uses_encrypted(pending.nameserver_address):
            if self.policy.pooled:
                self._send_pooled(key, pending)
            else:
                self._send_encrypted(key, pending)
            return
        if self.policy is not None:
            # An opportunistic policy in its hold-down window: plaintext.
            self.downgraded_queries += 1
        self.resolver._send_upstream_datagram(pending)

    def _send_encrypted(self, key: tuple[int, str], pending: PendingUpstreamQuery) -> None:
        policy = self.policy
        self.encrypted_queries += 1
        pending.sent_via = "stream"
        connection = self.resolver.tcp.connect(
            pending.nameserver_address, policy.port, timeout=policy.connect_timeout)
        channel = SecureChannel.client(
            connection, self._simulator.rng,
            expected_identity=self.expected_identity or "",
            trust_anchor=self.trust_anchor or "")
        framing = policy.protocol
        wire = pending.upstream_query.encode()
        request = doh_request(wire) if framing == "doh" else frame_dns(wire)
        channel.on_ready = lambda: channel.send(request)
        channel.on_data = self._receiver(channel, pending, framing)
        channel.on_failure = lambda reason: self._on_encrypted_failure(key, pending, reason)

    def _on_encrypted_failure(self, key: tuple[int, str],
                              pending: PendingUpstreamQuery, reason: str) -> None:
        self.encrypted_failures += 1
        if key not in self.resolver._pending:
            return  # already answered or timed out
        if self.policy.strict:
            # Strict: fail closed.  The pending query runs into the
            # resolver's timeout and the client sees SERVFAIL — resolution
            # degrades to *unavailable*, never to *unauthenticated*.
            return
        # Opportunistic: fall back to plaintext for this query and remember
        # the failure.  This is the downgrade the attack scenario exploits.
        self._plaintext_until[pending.nameserver_address] = (
            self._simulator.now + self.policy.holddown)
        self.downgraded_queries += 1
        self.resolver._send_upstream_datagram(pending)

    # -- pooled dispatch ---------------------------------------------------------
    def _send_pooled(self, key: tuple[int, str],
                     pending: PendingUpstreamQuery) -> None:
        """Send over the connection pool: reuse, else resume, else cold."""
        policy = self.policy
        address = pending.nameserver_address
        self.encrypted_queries += 1
        pending.sent_via = "stream"
        obs = self._simulator.obs
        pool_key = (address, policy.protocol)
        pooled = self._pool.get(pool_key)
        if pooled is not None and not pooled.closed:
            self.connections_reused += 1
            if obs.enabled:
                obs.metrics.counter("dns.pool.connections_reused",
                                    protocol=policy.protocol).inc()
            pooled.send_query(key, pending)
            self._note_in_flight(pooled, obs)
            return
        self.connections_opened += 1
        if obs.enabled:
            obs.metrics.counter("dns.pool.connections_opened",
                                protocol=policy.protocol).inc()
        ticket = self._tickets.get(address) if policy.zero_rtt else None
        stack = self.resolver.tcp
        if ticket is not None:
            # 0-RTT: compose the first flight before the SYN leaves so the
            # resumption hello and the encrypted query ride the SYN itself.
            connection = stack.create_connection(
                address, policy.port, timeout=policy.connect_timeout)
        else:
            connection = stack.connect(
                address, policy.port, timeout=policy.connect_timeout)
        channel = SecureChannel.client(
            connection, self._simulator.rng,
            expected_identity=self.expected_identity or "",
            trust_anchor=self.trust_anchor or "",
            ticket=ticket,
            on_ticket=lambda t, address=address: self._cache_ticket(address, t))
        pooled = PooledConnection(self, address, policy.protocol, channel,
                                  idle_timeout=policy.idle_timeout)
        self._pool[pool_key] = pooled
        if ticket is not None:
            pooled.resumed = True
            self.zero_rtt_queries += 1
            if obs.enabled:
                obs.metrics.counter("dns.pool.zero_rtt_queries",
                                    protocol=policy.protocol).inc()
            wire = pending.upstream_query.encode()
            request = (doh_request(wire) if policy.protocol == "doh"
                       else frame_dns(wire))
            pooled.adopt(key, pending)
            connection.open(channel.first_flight(request))
        else:
            pooled.send_query(key, pending)
        self._note_in_flight(pooled, obs)

    def _cache_ticket(self, address: str, ticket: SessionTicket) -> None:
        self._tickets[address] = ticket

    def _note_in_flight(self, pooled: PooledConnection, obs) -> None:
        self.pipelined_max_in_flight = max(self.pipelined_max_in_flight,
                                           len(pooled.in_flight))
        if obs.enabled:
            obs.metrics.gauge("dns.pool.pipelined_in_flight",
                              nameserver=pooled.address
                              ).track_max(len(pooled.in_flight))

    def _connection_gone(self, pooled: PooledConnection, reason: str,
                         redispatch: bool) -> None:
        """A pooled stream closed or died; re-home its in-flight queries."""
        pool_key = (pooled.address, pooled.protocol)
        if self._pool.get(pool_key) is pooled:
            del self._pool[pool_key]
        obs = self._simulator.obs
        if obs.enabled:
            obs.trace.complete("dns.pool.connection", start=pooled.opened_at,
                               category="dns", nameserver=pooled.address,
                               protocol=pooled.protocol,
                               queries=pooled.queries_sent,
                               max_in_flight=pooled.max_in_flight,
                               resumed=pooled.resumed, reason=reason)
        if reason == "unknown session ticket":
            # The server no longer honours our ticket (expired, or burned by
            # a single-use anti-replay store): next open is a full handshake.
            self._tickets.pop(pooled.address, None)
        orphans = list(pooled.in_flight.items())
        pooled.in_flight.clear()
        if not redispatch:
            return
        for key, orphan in orphans:
            if key not in self.resolver._pending:
                continue  # already answered or timed out
            if orphan.pool_redispatches < 2:
                # Reconnect-on-reset: two fresh attempts (enough to cover a
                # failed resumption falling back to a cold handshake) before
                # the policy's failure handling decides strict-vs-downgrade.
                orphan.pool_redispatches += 1
                self.reconnects += 1
                self.encrypted_queries -= 1  # re-dispatch, not a new query
                self._send_pooled(key, orphan)
            else:
                self._on_encrypted_failure(key, orphan, reason)

    # -- TC-bit fallback -----------------------------------------------------------
    def retry_over_tcp(self, key: tuple[int, str], pending: PendingUpstreamQuery) -> None:
        """Re-ask one truncated query over plain DNS-over-TCP (RFC 7766)."""
        self.tcp_retries += 1
        pending.sent_via = "stream"
        connection = self.resolver.tcp.connect(pending.nameserver_address, DNS_PORT)
        socket = PlainStreamSocket(connection)
        wire = pending.upstream_query.encode()
        socket.on_ready = lambda: socket.send(frame_dns(wire))
        socket.on_data = self._receiver(socket, pending, "tcp")
        # On failure (no TCP listener, timeout): the query stays pending and
        # the resolver's own timeout answers SERVFAIL — a truncated response
        # is never accepted, with or without a working fallback path.

    # -- response delivery -----------------------------------------------------------
    def _receiver(self, socket: StreamSocket, pending: PendingUpstreamQuery,
                  framing: str) -> Callable[[bytes], None]:
        decoder = DoHMessageDecoder() if framing == "doh" else DNSFrameDecoder()

        def on_data(data: bytes) -> None:
            for wire in decoder.feed(data):
                try:
                    response = DNSMessage.decode(wire)
                except Exception:  # noqa: PERF203 — per-frame garbage tolerance
                    continue
                socket.close()
                self._deliver(pending, response, wire)
                return

        return on_data

    def _deliver(self, pending: PendingUpstreamQuery, response: DNSMessage,
                 wire: bytes) -> None:
        # The stream endpoint *is* the provenance: the connection was opened
        # to the nameserver's address and (for DoT/DoH) authenticated by the
        # pinned certificate.  The synthetic datagram presents that
        # provenance to the defense stack so response matching holds.
        datagram = UDPDatagram(
            src_ip=pending.nameserver_address,
            dst_ip=self.resolver.address,
            src_port=DNS_PORT,
            dst_port=pending.source_port,
            payload=wire,
        )
        self.resolver._handle_upstream_response(datagram, response, via="stream")
