"""Encrypted and stream DNS transports: DNS-over-TCP, DoT and DoH.

The paper positions encrypted transports as the countermeasure *class* that
removes both off-path poisoning vectors — a blind spoofer cannot inject into
a sequence-checked stream, and a hijacker who diverts the packets cannot
complete a TLS handshake for an identity it holds no certificate for — at
the cost of a changed trust model.  This module provides both halves:

* **server side** — :class:`DNSServerTransport` attaches stream listeners to
  an :class:`~repro.dns.nameserver.AuthoritativeNameserver`: plain
  DNS-over-TCP on 53 (RFC 7766, the TC-bit fallback target), DoT on 853
  (RFC 7858) and DoH on 443 (RFC 8484, modelled as ``POST /dns-query`` over
  the secure channel).  Stream responses are never truncated — that is the
  entire point of the TC bit.
* **resolver side** — :class:`ResolverUpstreamTransport` manages how a
  recursive resolver reaches its upstream nameservers: plain UDP (the
  default, and the paper's attack surface), a one-shot plain-TCP retry when
  a UDP response comes back truncated, or an
  :class:`EncryptedTransportPolicy` that routes queries over DoT/DoH —
  *strict* (never fall back; resolution fails rather than degrade) or
  *opportunistic* (fall back to plaintext UDP when the encrypted transport
  fails, remembering the failure for ``holddown`` seconds).  Opportunistic
  mode is deliberately exploitable: an attacker who can make the encrypted
  connection fail — a spoofed-source SYN flood on the nameserver's
  listeners, or a hijack that blackholes port 853 — pushes the resolver
  back onto UDP and then runs the classic poisoning race.  See
  :mod:`repro.attacks.downgrade`.

Framing is the real wire format: stream DNS messages carry the RFC 1035
two-byte length prefix; DoH wraps the same wire bytes in a minimal HTTP/1.1
exchange.  One connection serves one query in this model (no pipelining):
the handshake cost per query is exactly what
``benchmarks/bench_encrypted_transport.py`` measures against the UDP
baseline.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Optional

from ..netsim.packets import UDPDatagram
from ..netsim.transport import (
    Connection,
    PlainStreamSocket,
    SecureChannel,
    StreamSocket,
)
from .message import DNSMessage
from .nameserver import DNS_PORT, AuthoritativeNameserver

if TYPE_CHECKING:
    from .resolver import PendingUpstreamQuery, RecursiveResolver

#: RFC 7858: DNS-over-TLS port.
DOT_PORT = 853
#: RFC 8484: DNS-over-HTTPS port.
DOH_PORT = 443

#: Transport names accepted by :class:`DNSServerTransport` and the testbed.
STREAM_TRANSPORTS = ("tcp", "dot", "doh")


def frame_dns(wire: bytes) -> bytes:
    """Prefix a DNS message with the RFC 1035 two-byte length."""
    return len(wire).to_bytes(2, "big") + wire


class DNSFrameDecoder:
    """Reassembles length-prefixed DNS messages from stream chunks."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        messages: list[bytes] = []
        while len(self._buffer) >= 2:
            length = int.from_bytes(self._buffer[:2], "big")
            if len(self._buffer) < 2 + length:
                break
            messages.append(bytes(self._buffer[2:2 + length]))
            del self._buffer[:2 + length]
        return messages


def doh_request(wire: bytes) -> bytes:
    """A minimal RFC 8484 POST carrying one DNS message."""
    header = (f"POST /dns-query HTTP/1.1\r\n"
              f"content-type: application/dns-message\r\n"
              f"content-length: {len(wire)}\r\n\r\n")
    return header.encode("ascii") + wire


def doh_response(wire: bytes) -> bytes:
    header = (f"HTTP/1.1 200 OK\r\n"
              f"content-type: application/dns-message\r\n"
              f"content-length: {len(wire)}\r\n\r\n")
    return header.encode("ascii") + wire


class DoHMessageDecoder:
    """Extracts DNS message bodies from a stream of HTTP/1.1 messages."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        self._buffer += data
        messages: list[bytes] = []
        while True:
            head_end = self._buffer.find(b"\r\n\r\n")
            if head_end < 0:
                break
            head = bytes(self._buffer[:head_end]).decode("ascii", errors="replace")
            length = 0
            for line in head.split("\r\n")[1:]:
                name, _, value = line.partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body_start = head_end + 4
            if len(self._buffer) < body_start + length:
                break
            messages.append(bytes(self._buffer[body_start:body_start + length]))
            del self._buffer[:body_start + length]
        return messages


# -- server side ---------------------------------------------------------------


class DNSServerTransport:
    """Stream listeners (TCP 53 / DoT 853 / DoH 443) for a nameserver.

    Each accepted connection gets its own framing decoder; every decoded
    query is answered through the nameserver's ``answer_query`` — the same
    logic as UDP, so cookies, 0x20 case patterns and signatures are echoed
    identically — and stream responses are never truncated.
    """

    def __init__(self, nameserver: AuthoritativeNameserver,
                 transports: tuple[str, ...] = ("tcp",),
                 cert_key: Optional[str] = None,
                 identity: Optional[str] = None,
                 backlog: Optional[int] = None) -> None:
        unknown = set(transports) - set(STREAM_TRANSPORTS)
        if unknown:
            raise ValueError(f"unknown stream transport(s): {sorted(unknown)}; "
                             f"supported: {STREAM_TRANSPORTS}")
        if ("dot" in transports or "doh" in transports) and cert_key is None:
            raise ValueError("encrypted transports need a certificate key")
        self.nameserver = nameserver
        self.transports = tuple(transports)
        self.cert_key = cert_key
        self.identity = identity
        self.queries_answered: dict[str, int] = {name: 0 for name in transports}
        kwargs = {} if backlog is None else {"backlog": backlog}
        stack = nameserver.tcp
        if "tcp" in transports:
            self.tcp_listener = stack.listen(
                DNS_PORT, lambda conn: self._serve_plain(conn, "tcp"), **kwargs)
        if "dot" in transports:
            self.dot_listener = stack.listen(
                DOT_PORT, lambda conn: self._serve_secure(conn, "dot"), **kwargs)
        if "doh" in transports:
            self.doh_listener = stack.listen(
                DOH_PORT, lambda conn: self._serve_secure(conn, "doh"), **kwargs)
        nameserver.stream_transport = self

    def _rng(self):
        return self.nameserver.network.simulator.rng

    def _serve_plain(self, connection: Connection, label: str) -> None:
        self._attach(PlainStreamSocket(connection), label)

    def _serve_secure(self, connection: Connection, label: str) -> None:
        channel = SecureChannel.server(
            connection, self._rng(),
            identity=self.identity or self.nameserver.name,
            cert_key=self.cert_key)
        self._attach(channel, label)

    def _attach(self, socket: StreamSocket, label: str) -> None:
        decoder = DoHMessageDecoder() if label == "doh" else DNSFrameDecoder()

        def on_data(data: bytes, socket=socket, decoder=decoder, label=label):
            for wire in decoder.feed(data):
                try:
                    query = DNSMessage.decode(wire)
                except Exception:  # noqa: PERF203 — per-frame garbage tolerance
                    continue
                if query.is_response:
                    continue
                self.nameserver.queries_received += 1
                response = self.nameserver.answer_query(query)
                self.nameserver.responses_sent += 1
                self.queries_answered[label] += 1
                encoded = response.encode()
                socket.send(doh_response(encoded) if label == "doh"
                            else frame_dns(encoded))

        socket.on_data = on_data


# -- resolver side -------------------------------------------------------------


class EncryptedTransportPolicy:
    """How a resolver uses encrypted upstream transports.

    ``strict`` resolvers never speak plaintext: when the encrypted transport
    fails, the query fails (and the off-path attacker gets nothing).
    Opportunistic resolvers prefer encryption but fall back to plaintext UDP
    on failure, remembering the failed nameserver for ``holddown`` seconds —
    the RFC 7435 trade-off whose downgrade-ability
    :mod:`repro.attacks.downgrade` makes measurable.
    """

    def __init__(self, protocol: str = "dot", strict: bool = True,
                 connect_timeout: float = 1.0, holddown: float = 600.0) -> None:
        if protocol not in ("dot", "doh"):
            raise ValueError(f"unknown encrypted protocol {protocol!r}")
        self.protocol = protocol
        self.strict = strict
        self.connect_timeout = connect_timeout
        self.holddown = holddown

    @property
    def port(self) -> int:
        return DOT_PORT if self.protocol == "dot" else DOH_PORT


class ResolverUpstreamTransport:
    """Per-resolver manager for stream-based upstream queries.

    Every resolver owns one (created lazily for the TC-bit retry); the
    ``encrypted_transport`` defense attaches one with an
    :class:`EncryptedTransportPolicy` so upstream queries travel over
    DoT/DoH instead of UDP.
    """

    def __init__(self, resolver: RecursiveResolver,
                 policy: Optional[EncryptedTransportPolicy] = None,
                 trust_anchor: Optional[str] = None,
                 expected_identity: Optional[str] = None) -> None:
        self.resolver = resolver
        self.policy = policy
        self.trust_anchor = trust_anchor
        self.expected_identity = expected_identity
        #: nameserver address -> simulated time until which the resolver
        #: speaks plaintext to it (opportunistic downgrade hold-down).
        self._plaintext_until: dict[str, float] = {}
        self.encrypted_queries = 0
        self.encrypted_failures = 0
        #: Queries an opportunistic policy pushed back to plaintext UDP.
        self.downgraded_queries = 0
        #: Plain-TCP retries triggered by truncated UDP responses.
        self.tcp_retries = 0

    # -- helpers ---------------------------------------------------------------
    @property
    def _simulator(self):
        return self.resolver.network.simulator

    def uses_encrypted(self, nameserver_address: str) -> bool:
        """Whether the next query to this nameserver goes over DoT/DoH."""
        if self.policy is None:
            return False
        if self.policy.strict:
            return True
        return self._plaintext_until.get(nameserver_address, 0.0) <= self._simulator.now

    # -- dispatch ----------------------------------------------------------------
    def dispatch(self, key: tuple[int, str], pending: PendingUpstreamQuery) -> None:
        """Send one upstream query per the policy (called by the resolver)."""
        if self.uses_encrypted(pending.nameserver_address):
            self._send_encrypted(key, pending)
            return
        if self.policy is not None:
            # An opportunistic policy in its hold-down window: plaintext.
            self.downgraded_queries += 1
        self.resolver._send_upstream_datagram(pending)

    def _send_encrypted(self, key: tuple[int, str], pending: PendingUpstreamQuery) -> None:
        policy = self.policy
        self.encrypted_queries += 1
        pending.sent_via = "stream"
        connection = self.resolver.tcp.connect(
            pending.nameserver_address, policy.port, timeout=policy.connect_timeout)
        channel = SecureChannel.client(
            connection, self._simulator.rng,
            expected_identity=self.expected_identity or "",
            trust_anchor=self.trust_anchor or "")
        framing = policy.protocol
        wire = pending.upstream_query.encode()
        request = doh_request(wire) if framing == "doh" else frame_dns(wire)
        channel.on_ready = lambda: channel.send(request)
        channel.on_data = self._receiver(channel, pending, framing)
        channel.on_failure = lambda reason: self._on_encrypted_failure(key, pending, reason)

    def _on_encrypted_failure(self, key: tuple[int, str],
                              pending: PendingUpstreamQuery, reason: str) -> None:
        self.encrypted_failures += 1
        if key not in self.resolver._pending:
            return  # already answered or timed out
        if self.policy.strict:
            # Strict: fail closed.  The pending query runs into the
            # resolver's timeout and the client sees SERVFAIL — resolution
            # degrades to *unavailable*, never to *unauthenticated*.
            return
        # Opportunistic: fall back to plaintext for this query and remember
        # the failure.  This is the downgrade the attack scenario exploits.
        self._plaintext_until[pending.nameserver_address] = (
            self._simulator.now + self.policy.holddown)
        self.downgraded_queries += 1
        self.resolver._send_upstream_datagram(pending)

    # -- TC-bit fallback -----------------------------------------------------------
    def retry_over_tcp(self, key: tuple[int, str], pending: PendingUpstreamQuery) -> None:
        """Re-ask one truncated query over plain DNS-over-TCP (RFC 7766)."""
        self.tcp_retries += 1
        pending.sent_via = "stream"
        connection = self.resolver.tcp.connect(pending.nameserver_address, DNS_PORT)
        socket = PlainStreamSocket(connection)
        wire = pending.upstream_query.encode()
        socket.on_ready = lambda: socket.send(frame_dns(wire))
        socket.on_data = self._receiver(socket, pending, "tcp")
        # On failure (no TCP listener, timeout): the query stays pending and
        # the resolver's own timeout answers SERVFAIL — a truncated response
        # is never accepted, with or without a working fallback path.

    # -- response delivery -----------------------------------------------------------
    def _receiver(self, socket: StreamSocket, pending: PendingUpstreamQuery,
                  framing: str) -> Callable[[bytes], None]:
        decoder = DoHMessageDecoder() if framing == "doh" else DNSFrameDecoder()

        def on_data(data: bytes) -> None:
            for wire in decoder.feed(data):
                try:
                    response = DNSMessage.decode(wire)
                except Exception:  # noqa: PERF203 — per-frame garbage tolerance
                    continue
                socket.close()
                self._deliver(pending, response, wire)
                return

        return on_data

    def _deliver(self, pending: PendingUpstreamQuery, response: DNSMessage,
                 wire: bytes) -> None:
        # The stream endpoint *is* the provenance: the connection was opened
        # to the nameserver's address and (for DoT/DoH) authenticated by the
        # pinned certificate.  The synthetic datagram presents that
        # provenance to the defense stack so response matching holds.
        datagram = UDPDatagram(
            src_ip=pending.nameserver_address,
            dst_ip=self.resolver.address,
            src_port=DNS_PORT,
            dst_port=pending.source_port,
            payload=wire,
        )
        self.resolver._handle_upstream_response(datagram, response, via="stream")
