"""DNS messages: header, question, sections, and full wire encode/decode.

The encoder implements name compression, so the size of a response carrying
``n`` A records for the same owner name matches real DNS: 12 bytes of header,
one question, ``n`` sixteen-byte answer records (2-byte name pointer + type +
class + TTL + RDLENGTH + 4 address bytes) and an 11-byte EDNS OPT record.
:func:`max_a_records_for_payload` inverts that layout to compute how many A
records fit under a payload budget — the paper's "up to 89 for a single
non-fragmented DNS response".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from .records import RecordClass, RecordType, ResourceRecord, opt_record
from .wire import (
    WireFormatError,
    apply_case_pattern,
    decode_name,
    encode_name,
    extract_case_pattern,
    normalise_name,
    pack_uint16,
    unpack_uint16,
)

DNS_HEADER_SIZE = 12
#: Header flag marking the presence of a DNS-cookie block (the reserved Z
#: bit, repurposed by the simulation — see :class:`DNSMessage.cookie`).
COOKIE_FLAG = 0x0040
#: Size of the simulated cookie block in bytes.
COOKIE_SIZE = 8
#: Classic maximum UDP payload without EDNS.
CLASSIC_UDP_LIMIT = 512
#: UDP payload that fits in a single Ethernet frame: 1500 - 20 (IP) - 8 (UDP).
MAX_UNFRAGMENTED_UDP_PAYLOAD = 1472
#: Size of the EDNS OPT pseudo-record: root name (1) + type (2) + class (2)
#: + TTL (4) + RDLENGTH (2).
OPT_RECORD_SIZE = 11
#: Size of an answer A record whose owner name is compressed to a pointer:
#: pointer (2) + type (2) + class (2) + TTL (4) + RDLENGTH (2) + address (4).
COMPRESSED_A_RECORD_SIZE = 16


class ResponseCode(enum.IntEnum):
    """DNS RCODE values (subset)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    REFUSED = 5


class Opcode(enum.IntEnum):
    QUERY = 0


@dataclass(frozen=True)
class Question:
    """The question section entry (single-question messages only)."""

    name: str
    qtype: RecordType = RecordType.A
    qclass: int = RecordClass.IN

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", normalise_name(self.name))

    def encoded_size(self) -> int:
        return len(encode_name(self.name)) + 4


@dataclass(frozen=True)
class DNSMessage:
    """A DNS query or response message."""

    transaction_id: int
    question: Question
    is_response: bool = False
    answers: tuple[ResourceRecord, ...] = ()
    authority: tuple[ResourceRecord, ...] = ()
    additional: tuple[ResourceRecord, ...] = ()
    rcode: ResponseCode = ResponseCode.NOERROR
    recursion_desired: bool = True
    recursion_available: bool = False
    authoritative: bool = False
    truncated: bool = False
    dnssec_ok: bool = False
    #: DNS-cookie block (RFC 7873 model): a 64-bit value a client attaches to
    #: its query and the server must echo.  The simulation encodes it right
    #: after the question — alongside the transaction id in the *first*
    #: fragment of a fragmented response — because what the attack model
    #: cares about is that the cookie is attacker-visible under a BGP hijack
    #: (the attacker receives the query) and genuine under a fragment splice
    #: (the spoofed fragments only replace the trailing answer bytes).
    cookie: Optional[int] = None
    #: DNS-0x20 nonce: the case pattern of the question name's letters (bit i
    #: = i-th letter upper-cased).  ``None`` decodes/encodes as all-lowercase.
    case_nonce: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.transaction_id <= 0xFFFF:
            raise WireFormatError(f"transaction id out of range: {self.transaction_id}")
        if self.cookie is not None and not 0 <= self.cookie < 1 << (8 * COOKIE_SIZE):
            raise WireFormatError(f"cookie out of range: {self.cookie}")
        object.__setattr__(self, "answers", tuple(self.answers))
        object.__setattr__(self, "authority", tuple(self.authority))
        object.__setattr__(self, "additional", tuple(self.additional))

    # -- constructors --------------------------------------------------------
    @classmethod
    def query(cls, transaction_id: int, name: str, qtype: RecordType = RecordType.A,
              edns_payload: int = 4096, dnssec_ok: bool = False) -> DNSMessage:
        """Build a standard recursive query with an EDNS OPT record."""
        additional = (opt_record(edns_payload),) if edns_payload else ()
        return cls(
            transaction_id=transaction_id,
            question=Question(name=name, qtype=qtype),
            is_response=False,
            additional=additional,
            dnssec_ok=dnssec_ok,
        )

    def make_response(self, answers: list[ResourceRecord],
                      rcode: ResponseCode = ResponseCode.NOERROR,
                      authoritative: bool = True,
                      edns_payload: int = 4096) -> DNSMessage:
        """Build a response to this query, echoing id and question."""
        additional = (opt_record(edns_payload),) if edns_payload else ()
        return replace(
            self,
            is_response=True,
            answers=tuple(answers),
            authority=(),
            additional=additional,
            rcode=rcode,
            authoritative=authoritative,
            recursion_available=True,
        )

    # -- convenience ---------------------------------------------------------
    @property
    def answer_addresses(self) -> list[str]:
        """All A-record addresses in the answer section, in order."""
        return [rr.rdata for rr in self.answers if rr.rtype == RecordType.A]

    def matches_query(self, query: DNSMessage) -> bool:
        """Off-path acceptance check a resolver performs on a response:
        transaction id and question must match the outstanding query."""
        return (
            self.transaction_id == query.transaction_id
            and self.question == query.question
        )

    # -- wire format -----------------------------------------------------------
    def flags(self) -> int:
        value = 0
        if self.is_response:
            value |= 0x8000
        if self.authoritative:
            value |= 0x0400
        if self.truncated:
            value |= 0x0200
        if self.recursion_desired:
            value |= 0x0100
        if self.recursion_available:
            value |= 0x0080
        if self.cookie is not None:
            value |= COOKIE_FLAG
        value |= int(self.rcode) & 0x000F
        return value

    def encode(self) -> bytes:
        """Serialise to wire bytes with name compression.

        The wire form is memoised on the instance: the message is frozen, so
        its bytes never change, and attack hot paths (spoofed-response
        bursts, repeated hijack answers) encode the same message many times.
        """
        cached = self.__dict__.get("_wire")
        if cached is not None:
            return cached
        out = bytearray()
        out += pack_uint16(self.transaction_id)
        out += pack_uint16(self.flags())
        out += pack_uint16(1)
        out += pack_uint16(len(self.answers))
        out += pack_uint16(len(self.authority))
        out += pack_uint16(len(self.additional))
        compression: dict = {}
        name_start = len(out)
        out += encode_name(self.question.name, compression, len(out))
        if self.case_nonce:
            # The compression map is keyed on the canonical lower-case name;
            # only the emitted bytes change case, so pointers still resolve.
            out[name_start:] = apply_case_pattern(bytes(out[name_start:]), self.case_nonce)
        out += pack_uint16(int(self.question.qtype))
        out += pack_uint16(int(self.question.qclass))
        if self.cookie is not None:
            out += self.cookie.to_bytes(COOKIE_SIZE, "big")
        for section in (self.answers, self.authority, self.additional):
            for record in section:
                out += record.encode(compression, len(out))
        wire = bytes(out)
        object.__setattr__(self, "_wire", wire)
        return wire

    @property
    def wire_size(self) -> int:
        """Size of the encoded message in bytes."""
        return len(self.encode())

    @classmethod
    def decode(cls, data: bytes) -> DNSMessage:
        """Parse wire bytes back into a message (single-question only)."""
        if len(data) < DNS_HEADER_SIZE:
            raise WireFormatError("truncated DNS header")
        transaction_id = unpack_uint16(data, 0)
        flags = unpack_uint16(data, 2)
        qdcount = unpack_uint16(data, 4)
        ancount = unpack_uint16(data, 6)
        nscount = unpack_uint16(data, 8)
        arcount = unpack_uint16(data, 10)
        if qdcount != 1:
            raise WireFormatError(f"unsupported question count: {qdcount}")
        offset = DNS_HEADER_SIZE
        qname, offset = decode_name(data, offset)
        nonce, _ = extract_case_pattern(data[DNS_HEADER_SIZE:offset])
        qtype = RecordType(unpack_uint16(data, offset))
        qclass = unpack_uint16(data, offset + 2)
        offset += 4
        cookie: Optional[int] = None
        if flags & COOKIE_FLAG:
            if offset + COOKIE_SIZE > len(data):
                raise WireFormatError("truncated cookie block")
            cookie = int.from_bytes(data[offset:offset + COOKIE_SIZE], "big")
            offset += COOKIE_SIZE
        sections: list[list[ResourceRecord]] = []
        for count in (ancount, nscount, arcount):
            records: list[ResourceRecord] = []
            for _ in range(count):
                record, offset = ResourceRecord.decode(data, offset)
                records.append(record)
            sections.append(records)
        return cls(
            transaction_id=transaction_id,
            question=Question(name=qname, qtype=qtype, qclass=qclass),
            is_response=bool(flags & 0x8000),
            answers=tuple(sections[0]),
            authority=tuple(sections[1]),
            additional=tuple(sections[2]),
            rcode=ResponseCode(flags & 0x000F),
            recursion_desired=bool(flags & 0x0100),
            recursion_available=bool(flags & 0x0080),
            authoritative=bool(flags & 0x0400),
            truncated=bool(flags & 0x0200),
            cookie=cookie,
            # All-lowercase decodes to None so that cookie-less, case-less
            # messages round-trip to objects equal to their originals.
            case_nonce=nonce or None,
        )


def response_size_for_a_records(qname: str, record_count: int, with_edns: bool = True) -> int:
    """Wire size of a response to ``qname`` carrying ``record_count`` A records.

    Computed analytically from the layout (and cross-checked against the real
    encoder in the test suite).
    """
    question_size = len(encode_name(qname)) + 4
    size = DNS_HEADER_SIZE + question_size + record_count * COMPRESSED_A_RECORD_SIZE
    if with_edns:
        size += OPT_RECORD_SIZE
    return size


def max_a_records_for_payload(qname: str, payload_limit: int = MAX_UNFRAGMENTED_UDP_PAYLOAD,
                              with_edns: bool = True) -> int:
    """Maximum number of A records that fit in a response of ``payload_limit`` bytes.

    With the pool.ntp.org question name, EDNS enabled and the conventional
    1472-byte unfragmented UDP budget this evaluates to 89 — the figure the
    paper quotes for the attacker's single-response pool flood.
    """
    question_size = len(encode_name(qname)) + 4
    fixed = DNS_HEADER_SIZE + question_size + (OPT_RECORD_SIZE if with_edns else 0)
    if payload_limit < fixed:
        return 0
    return (payload_limit - fixed) // COMPRESSED_A_RECORD_SIZE
