"""Packet-level cross-validation of the fleet engine.

The fleet engine is only trustworthy if, on populations small enough to run
through the packet-level testbed, both paths tell the *same story client for
client*.  This module pins that overlap:

* :func:`gate_fleet_config` builds a deterministic 28-client population —
  one client per resolver, starts on the query grid (``start_i = i * 3600``),
  hijack window placed so the effective poison query spans ``k = 24 .. 2``
  (clients 2..24), hits ``k = 1`` (client 25) and leaves four clients
  unpoisoned (0, 1, 26, 27).  ``dedupe=False`` puts both paths in the
  paper's address-counting regime, where composition is exactly closed-form.
* :func:`fleet_gate_records` runs the population through the engine;
  :func:`packet_gate_records` replays *every client* as its own
  ``chronos_pool_attack`` run (the packet testbed simulates one victim at a
  time) configured with the engine-derived poison query — the per-client
  ``k`` themselves are asserted against the analytic construction by the
  test suite, so a propagation bug cannot hide by feeding both sides.
* :func:`population_digest` hashes the canonical per-client records;
  :func:`equivalence_digests` returns the (packet, fleet) digest pair that
  must be equal seed for seed, with and without numpy.

Canonicalisation: all counts are exact integers on both paths.  The shift
phase is compared only for clients whose pool is purely malicious
(``k = 1``: zero benign servers), where the packet outcome is deterministic
up to NTP fixed-point quantisation (the 2⁻³² s timestamp grid injects
~1e-7 s per round); ``achieved_shift`` is therefore canonicalised at
millisecond precision, far above the noise and far below any decision
boundary in the gate construction.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from typing import Any, Optional

from ..core.selection import ChronosConfig
from ..experiments.runner import run_scenario
from .batch import FleetPolicy
from .engine import FleetConfig, FleetEngine

GATE_CLIENTS = 28
GATE_INTERVAL = 3600.0
GATE_QUERIES = 24

#: Query k of client i lands at ``(i + k - 1) * interval``; this window
#: contains exactly the grid point ``25 * interval``, so client i is first
#: poisoned at query ``26 - i`` (clipped to the 1..24 range).
GATE_HIJACK_START = GATE_QUERIES * GATE_INTERVAL + (GATE_INTERVAL - 300.0)
GATE_HIJACK_DURATION = 600.0


def expected_gate_poison_query(client: int) -> Optional[int]:
    """The analytically expected poison query of a gate client."""
    k = 26 - client
    if client >= 25:
        # Starts at or after the poisoning instant: poisoned from query 1 if
        # its resolver is reached at all — only client 25 queries in-window.
        return 1 if client == 25 else None
    return k if 1 <= k <= GATE_QUERIES else None


def gate_fleet_config(seed: int, *, clients: int = GATE_CLIENTS,
                      malicious_ttl: int = 2 * 86400,
                      max_addresses_per_response: Optional[int] = None,
                      max_accepted_ttl: Optional[int] = None,
                      target_shift: float = 600.0, update_rounds: int = 5,
                      backend: Optional[str] = None) -> FleetConfig:
    """The gate population: deterministic starts, one resolver per client."""
    if clients > 64:
        raise ValueError("the equivalence gate is meant for <=64 clients")
    policy = FleetPolicy(
        query_count=GATE_QUERIES,
        query_interval=GATE_INTERVAL,
        malicious_ttl=malicious_ttl,
        dedupe=False,
        max_addresses_per_response=max_addresses_per_response,
        max_accepted_ttl=max_accepted_ttl,
    )
    return FleetConfig(
        clients=clients,
        resolvers=clients,
        seed=seed,
        explicit_starts=tuple(i * GATE_INTERVAL for i in range(clients)),
        policy=policy,
        chronos=ChronosConfig(),
        hijack_start=GATE_HIJACK_START,
        hijack_duration=GATE_HIJACK_DURATION,
        run_time_shift=True,
        target_shift=target_shift,
        update_rounds=update_rounds,
        backend=backend,
    )


def _shift_comparable(record: Mapping[str, Any]) -> bool:
    """Shift metrics are compared only where they are deterministic: a pool
    with no benign servers panics to exactly the target on round one."""
    return record["benign"] == 0 and record["malicious"] > 0


def _canonical(client: int, seed: int, poison_at_query: Optional[int],
               metrics: Mapping[str, Any], with_shift: bool) -> dict[str, Any]:
    record = {
        "client": client,
        "seed": seed,
        "poison_at_query": poison_at_query,
        "attack_succeeded": bool(metrics["attack_succeeded"]),
        "benign": int(metrics["benign"]),
        "malicious": int(metrics["malicious"]),
        "pool_size": int(metrics["pool_size"]),
        "cache_hits": int(metrics["cache_hits"]),
        "poisoned_queries": [int(q) for q in metrics["poisoned_queries"]],
    }
    if with_shift:
        record.update({
            "achieved_shift": round(float(metrics["achieved_shift"]), 3),
            "shift_achieved": bool(metrics["shift_achieved"]),
            "updates_run": int(metrics["updates_run"]),
            "panic_rounds": int(metrics["panic_rounds"]),
        })
    return record


def fleet_gate_records(seed: int, **gate_kwargs: Any) -> list[dict[str, Any]]:
    """Canonical per-client records of the gate population, engine path."""
    config = gate_fleet_config(seed, **gate_kwargs)
    _, details = FleetEngine(config).run_detailed()
    records = []
    for detail in details:
        metrics = dict(detail)
        metrics["attack_succeeded"] = detail["attacker_two_thirds"]
        records.append(_canonical(detail["client"], seed,
                                  detail["poison_at_query"], metrics,
                                  _shift_comparable(detail)))
    return records


def packet_gate_records(seed: int, fleet_records: Sequence[Mapping[str, Any]],
                        **gate_kwargs: Any) -> list[dict[str, Any]]:
    """The same clients, each replayed through the packet-level testbed.

    The packet simulator models one victim per run; a gate client maps onto
    a run whose ``poison_at_query`` is the engine-derived index (``None``
    for unpoisoned clients — their resolver is never hijacked).
    """
    config = gate_fleet_config(seed, **gate_kwargs)
    records = []
    for fleet_record in fleet_records:
        poison = fleet_record["poison_at_query"]
        with_shift = _shift_comparable(fleet_record)
        params = {
            "poison_at_query": poison,
            "benign_server_count": config.policy.benign_servers,
            "attacker_record_count": config.policy.attacker_records,
            "malicious_ttl": config.policy.malicious_ttl,
            "hijack_duration": config.hijack_duration,
            "dedupe": False,
            "max_addresses_per_response": config.policy.max_addresses_per_response,
            "max_accepted_ttl": config.policy.max_accepted_ttl,
            "run_time_shift": with_shift,
            "target_shift": config.target_shift,
            "update_rounds": config.update_rounds,
        }
        metrics = run_scenario("chronos_pool_attack", seed, params)
        records.append(_canonical(fleet_record["client"], seed, poison,
                                  metrics, with_shift))
    return records


def population_digest(records: Sequence[Mapping[str, Any]]) -> str:
    """SHA-256 of the canonical JSON encoding of per-client records."""
    payload = json.dumps(list(records), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


def equivalence_digests(seeds: Sequence[int],
                        **gate_kwargs: Any) -> tuple[str, str]:
    """``(packet_digest, fleet_digest)`` over the gate population and seeds.

    Equality means the vectorized engine and the packet simulator agree on
    every compared field of every client for every seed.
    """
    packet_all: list[dict[str, Any]] = []
    fleet_all: list[dict[str, Any]] = []
    for seed in seeds:
        fleet = fleet_gate_records(seed, **gate_kwargs)
        fleet_all.extend(fleet)
        packet_all.extend(packet_gate_records(seed, fleet, **gate_kwargs))
    return population_digest(packet_all), population_digest(fleet_all)
