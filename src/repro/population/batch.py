"""Batched per-client Chronos arithmetic: pool composition and selection.

Two pieces of the packet-level model vectorize exactly:

* **Pool composition.**  With address-counting pool generation
  (``dedupe=False``, the paper's §IV arithmetic), the composition a client
  ends up with is a *closed form* of the query index ``k`` at which the
  poisoning landed: the first ``k - 1`` queries contribute benign addresses,
  the poisoned query contributes the attacker records, and every later query
  within the malicious TTL is a cache hit that re-delivers (and re-absorbs)
  the same records.  :func:`batch_pool_composition` evaluates that form for a
  whole population at once, including the §V mitigations (address cap, TTL
  discard) and the TTL-expiry regime.  The deduplicating mode is the one
  place the batch layer is *approximate* (an expected-distinct estimate);
  the equivalence gate therefore runs ``dedupe=False``, where the closed
  form is packet-exact.

* **Selection.**  :func:`batch_chronos_select` applies the Chronos rule to a
  batch of offset rows.  Trimming and the spread check are pure order
  statistics and vectorize; the survivor *average* is deliberately computed
  per row with :func:`statistics.mean` (exact rational arithmetic) on both
  backends, so outcomes match :func:`repro.core.selection.chronos_select`
  element-wise including at decision boundaries.  The fleet engine's hot
  path never calls this on raw float rows — it uses the two-point
  specialization in :mod:`repro.population.engine` — so exactness here costs
  nothing at scale.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from statistics import mean
from typing import Any, Optional

from ..core.selection import ChronosConfig, SelectionStatus

#: Defaults mirroring the packet-level testbed (see ``experiments.testbed``).
DEFAULT_BENIGN_PER_RESPONSE = 4
DEFAULT_ATTACKER_RECORDS = 89
DEFAULT_BENIGN_TTL = 150


@dataclass(frozen=True)
class FleetPolicy:
    """Pool-generation policy of one client cohort, in closed-form terms."""

    query_count: int = 24
    query_interval: float = 3600.0
    benign_per_response: int = DEFAULT_BENIGN_PER_RESPONSE
    attacker_records: int = DEFAULT_ATTACKER_RECORDS
    #: Size of the benign volunteer population (only the deduplicating
    #: approximation consults it).
    benign_servers: int = 200
    benign_ttl: int = DEFAULT_BENIGN_TTL
    malicious_ttl: int = 2 * 86400
    #: ``True`` mirrors the NDSS design (unique addresses, approximated);
    #: ``False`` mirrors the paper's address-counting arithmetic (exact).
    dedupe: bool = False
    #: §V mitigation 1: accept at most this many addresses per response.
    max_addresses_per_response: Optional[int] = None
    #: §V mitigation 2: discard responses whose TTL exceeds this bound.
    max_accepted_ttl: Optional[int] = None

    def __post_init__(self) -> None:
        if self.query_count < 1:
            raise ValueError("query_count must be at least 1")
        if self.query_interval <= 0:
            raise ValueError("query_interval must be positive")
        if self.benign_per_response < 0 or self.attacker_records < 0:
            raise ValueError("record counts cannot be negative")

    def accepted_per_response(self, records: int) -> int:
        cap = self.max_addresses_per_response
        return records if cap is None else min(cap, records)

    def ttl_rejected(self, ttl: int) -> bool:
        return self.max_accepted_ttl is not None and ttl > self.max_accepted_ttl

    def cached_hit_count(self, poison_at_query: int) -> int:
        """How many of the later queries the poisoned entry answers from cache.

        The entry expires ``malicious_ttl`` seconds after the poisoned query;
        query ``k + j`` lands ``j * query_interval`` later.  TTLs within a
        couple of round-trips of a query-grid boundary are ambiguous at the
        packet level (the real queries drift ~40 ms per round trip); callers
        wanting packet-exact results keep the TTL clear of the grid.
        """
        remaining = self.query_count - poison_at_query
        if self.malicious_ttl >= remaining * self.query_interval:
            return remaining
        return min(remaining, int(self.malicious_ttl // self.query_interval))

    def expected_distinct_benign(self, benign_queries: int) -> int:
        """Expected distinct servers over ``benign_queries`` rotations.

        The deduplicating approximation: drawing ``r`` of ``B`` servers per
        query, the expected number of distinct servers after ``q`` queries is
        ``B * (1 - (1 - r/B)^q)``; rounded half-up so both backends agree.
        """
        if benign_queries <= 0 or self.benign_per_response <= 0:
            return 0
        accepted = self.accepted_per_response(self.benign_per_response)
        ratio = 1.0 - accepted / self.benign_servers
        import math

        expected = self.benign_servers * (1.0 - ratio ** benign_queries)
        return int(math.floor(expected + 0.5))


@dataclass(frozen=True)
class ClientComposition:
    """Closed-form pool outcome of one client (ints only — backend-neutral)."""

    poison_at_query: int  # 0 = never poisoned
    benign: int
    malicious: int
    cache_hits: int
    poisoned_query_count: int

    @property
    def pool_size(self) -> int:
        return self.benign + self.malicious

    @property
    def attacker_has_two_thirds(self) -> bool:
        return self.pool_size > 0 and self.malicious * 3 >= self.pool_size * 2

    def poisoned_queries(self) -> list[int]:
        """1-indexed query indices whose accepted records include attacker
        addresses — the poisoned query plus its cache-hit repeats."""
        if self.poisoned_query_count == 0:
            return []
        start = self.poison_at_query
        return list(range(start, start + self.poisoned_query_count))


def compose_client(policy: FleetPolicy, poison_at_query: int) -> ClientComposition:
    """The closed-form composition for one client (``0`` = never poisoned)."""
    benign_accept = policy.accepted_per_response(policy.benign_per_response)
    if policy.ttl_rejected(policy.benign_ttl):
        benign_accept = 0
    if poison_at_query <= 0 or poison_at_query > policy.query_count:
        if policy.dedupe:
            benign = policy.expected_distinct_benign(policy.query_count)
        else:
            benign = policy.query_count * benign_accept
        return ClientComposition(0, benign, 0, 0, 0)

    k = poison_at_query
    hits = policy.cached_hit_count(k)
    benign_queries = (k - 1) + (policy.query_count - k - hits)
    if policy.dedupe:
        benign = policy.expected_distinct_benign(benign_queries)
    else:
        benign = benign_queries * benign_accept
    if policy.ttl_rejected(policy.malicious_ttl):
        # The poisoned entry still occupies the resolver cache (the resolver
        # enforces no TTL policy here) so the cache hits happen — but the
        # client-side mitigation rejects every poisoned response.
        return ClientComposition(k, benign, 0, hits, 0)
    accepted = policy.accepted_per_response(policy.attacker_records)
    deliveries = 1 + hits
    malicious = accepted if policy.dedupe else accepted * deliveries
    poisoned_count = deliveries if accepted > 0 else 0
    return ClientComposition(k, benign, malicious, hits, poisoned_count)


def batch_pool_composition(policy: FleetPolicy,
                           poison_queries: Sequence[int]) -> list[ClientComposition]:
    """Compositions for a population of per-client poisoning indices.

    The distinct values of ``poison_queries`` number at most
    ``query_count + 1``, so the closed form is evaluated once per distinct
    index and fanned out — integer outputs, identical on every backend.
    """
    by_k = {}
    for k in poison_queries:
        key = int(k)
        if key not in by_k:
            by_k[key] = compose_client(policy, key)
    return [by_k[int(k)] for k in poison_queries]


@dataclass
class BatchSelection:
    """Element-wise outcomes of a batched selection call."""

    statuses: list[SelectionStatus]
    offsets: list[Optional[float]]

    def __len__(self) -> int:
        return len(self.statuses)

    @property
    def accepted(self) -> list[bool]:
        return [status is SelectionStatus.OK for status in self.statuses]


def _sorted_rows(rows: Sequence[Sequence[float]], np: Optional[Any]) -> list[list[float]]:
    """Rows sorted ascending; numpy sorts rectangular batches in one call."""
    if np is not None:
        array = np.asarray(rows, dtype=np.float64)
        if array.ndim != 2:
            raise ValueError("numpy batch selection requires rectangular rows")
        return np.sort(array, axis=1).tolist()
    return [sorted(row) for row in rows]


def batch_chronos_select(rows: Sequence[Sequence[float]], config: ChronosConfig,
                         elapsed_since_update: float = 0.0,
                         np: Optional[Any] = None) -> BatchSelection:
    """Apply the Chronos selection rule to every row of offsets.

    Matches :func:`repro.core.selection.chronos_select` element-wise: same
    statuses, same accepted offsets (the survivor mean is computed with the
    same exact-arithmetic ``statistics.mean``).
    """
    trim = config.trim_count
    minimum_required = 2 * trim + 1
    window = config.agreement_window
    bound = config.local_bound(elapsed_since_update)
    statuses: list[SelectionStatus] = []
    offsets: list[Optional[float]] = []
    for ordered in _sorted_rows(rows, np):
        if len(ordered) < minimum_required:
            statuses.append(SelectionStatus.TOO_FEW_SAMPLES)
            offsets.append(None)
            continue
        survivors = ordered[trim:len(ordered) - trim] if trim else ordered
        spread = survivors[-1] - survivors[0]
        if spread > window:
            statuses.append(SelectionStatus.WIDE_SPREAD)
            offsets.append(None)
            continue
        average = mean(survivors)
        if abs(average) > bound:
            statuses.append(SelectionStatus.FAR_FROM_LOCAL)
            offsets.append(None)
            continue
        statuses.append(SelectionStatus.OK)
        offsets.append(average)
    return BatchSelection(statuses, offsets)


def batch_panic_select(rows: Sequence[Sequence[float]],
                       np: Optional[Any] = None) -> BatchSelection:
    """Panic mode for every row: trim a third each end, average, no checks.

    Matches :func:`repro.core.selection.panic_select` element-wise.
    """
    statuses: list[SelectionStatus] = []
    offsets: list[Optional[float]] = []
    for ordered in _sorted_rows(rows, np):
        trim = len(ordered) // 3
        survivors = ordered[trim:len(ordered) - trim] if len(ordered) > 2 * trim else ordered
        if not survivors:
            statuses.append(SelectionStatus.TOO_FEW_SAMPLES)
            offsets.append(None)
            continue
        statuses.append(SelectionStatus.OK)
        offsets.append(mean(survivors))
    return BatchSelection(statuses, offsets)
