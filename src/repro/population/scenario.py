"""The ``population_sweep`` scenario: one fleet cohort per registry task.

A cohort is the unit of scheduling: ``population_specs`` slices a fleet of
``clients`` global ids into cohorts of at most ``cohort_size`` and returns
one :class:`~repro.experiments.runner.ExperimentSpec` whose ``param_sets``
are the cohort slices.  Each task streams its cohort through the
:class:`~repro.population.engine.FleetEngine` and returns *aggregates only*
(a few dozen numbers), so a million-client sweep materialises cohort
summaries — never per-client records — and rides the PR-3
:class:`~repro.experiments.scheduler.SweepScheduler` / RunCache machinery
unchanged.  Because every draw is keyed by global client id and resolver
poisoning is computed population-wide, the cohort decomposition does not
change any per-client outcome; :func:`combine_cohort_metrics` folds the
cohort records back into fleet-level totals.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from typing import Any, Optional

from ..core.selection import ChronosConfig
from ..experiments.registry import merge_params, register_scenario
from ..experiments.runner import ExperimentSpec
from .batch import FleetPolicy
from .engine import FleetConfig, FleetEngine


def fleet_config_from_params(seed: int, p: Mapping[str, Any]) -> FleetConfig:
    """Build a :class:`FleetConfig` from flat scenario parameters."""
    policy = FleetPolicy(
        query_count=p["query_count"],
        query_interval=p["query_interval"],
        benign_per_response=p["benign_per_response"],
        attacker_records=p["attacker_records"],
        benign_servers=p["benign_servers"],
        benign_ttl=p["benign_ttl"],
        malicious_ttl=p["malicious_ttl"],
        dedupe=p["dedupe"],
        max_addresses_per_response=p["max_addresses_per_response"],
        max_accepted_ttl=p["max_accepted_ttl"],
    )
    chronos = ChronosConfig(
        sample_size=p["sample_size"],
        err=p["err"],
        drift_ppm=p["drift_ppm"],
        max_retries=p["max_retries"],
        poll_interval=p["poll_interval"],
    )
    return FleetConfig(
        clients=p["clients"],
        resolvers=p["resolvers"],
        client_offset=p["client_offset"],
        population=p["population"],
        seed=seed,
        stagger_window=p["stagger_window"],
        policy=policy,
        chronos=chronos,
        hijack_start=p["hijack_start"],
        hijack_duration=p["hijack_duration"],
        run_time_shift=p["run_time_shift"],
        target_shift=p["target_shift"],
        update_rounds=p["update_rounds"],
        backend=p["backend"],
    )


@register_scenario
class PopulationSweepExperiment:
    """Analytic fleet simulation of the §IV attack at population scale."""

    name = "population_sweep"
    description = ("vectorized Chronos fleet: staggered clients behind shared "
                   "resolvers, closed-form pools, two-point update rounds")

    def default_params(self) -> dict[str, Any]:
        return {
            "clients": 1000,
            "client_offset": 0,
            "population": None,       # None: client_offset + clients
            "resolvers": 32,
            "stagger_window": 86400.0,
            "query_count": 24,
            "query_interval": 3600.0,
            "benign_per_response": 4,
            "attacker_records": 89,
            "benign_servers": 200,
            "benign_ttl": 150,
            "malicious_ttl": 2 * 86400,
            "dedupe": False,
            "max_addresses_per_response": None,
            "max_accepted_ttl": None,
            "sample_size": 15,
            "err": 0.1,
            "drift_ppm": 10.0,
            "max_retries": 2,
            "poll_interval": 3600.0 / 4,
            "hijack_start": 90000.0,
            "hijack_duration": 600.0,
            "run_time_shift": True,
            "target_shift": 600.0,
            "update_rounds": 5,
            # Metrics are backend-independent (bit-identical digests); the
            # knob only selects the implementation.
            "backend": "auto",
        }

    def run(self, seed: int, params: Mapping[str, Any]) -> dict[str, Any]:
        p = merge_params(self.default_params(), params)
        return FleetEngine(fleet_config_from_params(seed, p)).run()


def population_specs(clients: int, cohort_size: int,
                     seeds: tuple[int, ...] = (1,),
                     base_params: Optional[Mapping[str, Any]] = None,
                     ) -> list[ExperimentSpec]:
    """Shard a fleet into cohort tasks for the :class:`SweepScheduler`.

    Returns a single spec whose ``param_sets`` cover global client ids
    ``[0, clients)`` in slices of at most ``cohort_size``, each pinned to the
    full ``population`` so poisoning propagation sees the whole fleet.
    """
    if clients < 0:
        raise ValueError("clients cannot be negative")
    if cohort_size < 1:
        raise ValueError("cohort_size must be at least 1")
    overlays: list[Mapping[str, Any]] = []
    for offset in range(0, max(clients, 1), cohort_size):
        size = min(cohort_size, clients - offset)
        if size <= 0:
            size, offset = clients, 0
        overlays.append({"clients": size, "client_offset": offset,
                         "population": clients})
    return [ExperimentSpec(scenario="population_sweep", seeds=tuple(seeds),
                           base_params=dict(base_params or {}),
                           param_sets=tuple(overlays))]


#: Metric keys that combine across cohorts by integer summation.
_SUM_KEYS = ("clients", "clients_poisoned", "pool_benign_total",
             "pool_malicious_total", "cache_hits_total",
             "clients_attacker_two_thirds", "updates_run_total",
             "panic_rounds_total", "clients_shift_achieved")
_FSUM_KEYS = ("attacker_fraction_sum", "achieved_shift_sum")


def combine_cohort_metrics(metrics: Iterable[Mapping[str, Any]]) -> dict[str, Any]:
    """Fold cohort aggregates (same fleet, same seed) into fleet totals."""
    cohorts = list(metrics)
    if not cohorts:
        return {}
    combined: dict[str, Any] = {key: sum(m[key] for m in cohorts)
                                for key in _SUM_KEYS if key in cohorts[0]}
    combined.update({key: math.fsum(m[key] for m in cohorts)
                     for key in _FSUM_KEYS if key in cohorts[0]})
    histogram = [0] * len(cohorts[0]["poison_histogram"])
    for m in cohorts:
        for index, count in enumerate(m["poison_histogram"]):
            histogram[index] += count
    combined["poison_histogram"] = histogram
    combined.update({key: cohorts[0][key]
                     for key in ("population", "resolvers", "poisoned_resolvers")})
    clients = combined["clients"]
    if clients:
        combined["mean_attacker_fraction"] = (
            combined["attacker_fraction_sum"] / clients)
        if "achieved_shift_sum" in combined:
            combined["mean_achieved_shift"] = (
                combined["achieved_shift_sum"] / clients)
    return combined
