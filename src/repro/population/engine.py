"""The fleet engine: population-scale Chronos clients against shared resolvers.

The packet-level testbed simulates one victim per run at ~10² clients/sec.
This engine simulates *fleets* — up to millions of clients — by replacing the
event loop with three vectorizable stages:

1. **Poisoning propagation.**  Clients query their resolver once per
   ``query_interval`` from staggered start times.  Because the benign TTL is
   (much) shorter than the interval, a resolver's cache over the attack
   domain is a renewal process driven by the *union* of its clients' query
   grids; the first upstream miss inside the hijack window
   ``[hijack_start, hijack_start + hijack_duration)`` fixes the resolver's
   poison time.  The walk anchors the cache empty at
   ``hijack_start - benign_ttl`` (any entry fetched earlier has expired by
   the window; an entry fetched inside the anchor gap can at most shift the
   pre-window renewal phase — a documented approximation that is *exact*
   whenever ``benign_ttl < query_interval`` and resolvers serve single
   clients, the regime the equivalence gate runs).

2. **Pool composition.**  Each client's effective poison query ``k`` follows
   from its start and its resolver's poison time; the composition is the
   closed form of :func:`repro.population.batch.batch_pool_composition`.

3. **Update rounds.**  The time-shift phase collapses to a two-point offset
   model: every benign sample reads ``-S`` (the shift applied so far) and
   every malicious sample ``T - S``.  A Chronos attempt then depends only on
   *how many* of the ``m`` sampled servers are malicious — one hypergeometric
   draw — and the trimmed mean, spread and local-bound checks become integer
   clamps plus one float expression.  Panic (three failed attempts) trims the
   whole pool and always applies its mean.

Backend parity: all randomness is counter-addressed
(:class:`repro.population.rng.CounterRNG`, keyed by global client id so
cohort sharding cannot change any draw), integer aggregates are exact, and
float aggregates are reduced with :func:`math.fsum` (correctly rounded,
order-independent) — the numpy and pure-python paths produce identical
metrics, and so do different worker counts over the same cohorts.

Deliberate simplifications versus the packet model (documented, and outside
what the equivalence gate compares): the local-agreement bound uses elapsed
``0`` for the first round and ``poll_interval`` afterwards (the packet client
adds a few network latencies), and malicious-entry expiry is measured from
the client's first poisoned query rather than the resolver's poison time
(identical whenever resolvers serve single clients or the TTL is long).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.selection import ChronosConfig
from ..obs import current as _current_obs
from .batch import ClientComposition, FleetPolicy, compose_client
from .rng import CounterRNG, hypergeom_sampler, resolve_backend

#: Counter-RNG stream ids (never reuse a stream for two purposes).
STREAM_STAGGER = 1
STREAM_SELECT = 2

#: Attempts per update round: the initial sample plus ``max_retries``.
def _attempts(config: ChronosConfig) -> int:
    return config.max_retries + 1


@dataclass(frozen=True)
class FleetConfig:
    """One cohort of a (possibly sharded) client fleet.

    ``client_offset``/``population`` exist for sharding: a cohort covers
    global client ids ``[client_offset, client_offset + clients)`` out of a
    fleet of ``population``.  Every random draw is keyed by *global* id, and
    resolver poison times are computed from the *whole* population, so
    concatenating cohort runs reproduces the unsharded fleet exactly.
    """

    clients: int
    resolvers: int = 1
    client_offset: int = 0
    population: Optional[int] = None
    seed: int = 0
    #: Client start times are uniform in ``[0, stagger_window)``...
    stagger_window: float = 86400.0
    #: ...unless pinned explicitly (used by the equivalence gate to hit every
    #: poison index deterministically).  Length must equal ``population``.
    explicit_starts: Optional[tuple[float, ...]] = None
    policy: FleetPolicy = field(default_factory=FleetPolicy)
    chronos: ChronosConfig = field(default_factory=ChronosConfig)
    hijack_start: float = 90000.0
    hijack_duration: float = 600.0
    run_time_shift: bool = True
    target_shift: float = 600.0
    update_rounds: int = 5
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.clients < 0:
            raise ValueError("clients cannot be negative")
        if self.resolvers < 1:
            raise ValueError("resolvers must be at least 1")
        if self.client_offset < 0:
            raise ValueError("client_offset cannot be negative")
        total = self.total_population
        if total < self.client_offset + self.clients:
            raise ValueError("population smaller than client_offset + clients")
        if self.explicit_starts is not None and len(self.explicit_starts) != total:
            raise ValueError("explicit_starts must cover the whole population")
        if self.hijack_duration <= 0:
            raise ValueError("hijack_duration must be positive")
        if self.update_rounds < 0:
            raise ValueError("update_rounds cannot be negative")

    @property
    def total_population(self) -> int:
        if self.population is not None:
            return self.population
        return self.client_offset + self.clients

    def population_key(self) -> tuple:
        """Everything the resolver poison map depends on (memoisation key)."""
        return (self.seed, self.total_population, self.resolvers,
                self.stagger_window, self.explicit_starts,
                self.policy.query_count, self.policy.query_interval,
                self.policy.benign_ttl, self.hijack_start, self.hijack_duration)


# ---------------------------------------------------------------------------
# Stage 1: start times and resolver poison times
# ---------------------------------------------------------------------------

def _population_starts(config: FleetConfig, lo: int, hi: int,
                       np: Optional[Any]) -> Any:
    """Start times of global client ids ``[lo, hi)`` (array or list)."""
    if config.explicit_starts is not None:
        starts = config.explicit_starts[lo:hi]
        if np is not None:
            return np.asarray(starts, dtype=np.float64)
        return list(starts)
    rng = CounterRNG(config.seed, STREAM_STAGGER, backend=np)
    if np is not None:
        uniforms = rng.uniforms(np.arange(lo, hi, dtype=np.uint64))
        return uniforms * config.stagger_window
    uniforms = rng.uniforms(range(lo, hi))
    return [u * config.stagger_window for u in uniforms]


_POISON_MEMO: dict[tuple, dict[int, float]] = {}


def resolver_poison_times(config: FleetConfig,
                          np: Optional[Any]) -> dict[int, float]:
    """``{resolver id: poison time}`` for the resolvers hijacking reaches.

    Computed from the *whole* population (ids ``0..population``), never the
    cohort, so every cohort of a sharded fleet sees the same map.  Memoised
    per process — both backends produce identical maps, so the cache key can
    ignore which backend filled it.
    """
    key = config.population_key()
    cached = _POISON_MEMO.get(key)
    if cached is not None:
        return cached

    interval = config.policy.query_interval
    query_count = config.policy.query_count
    ttl = float(config.policy.benign_ttl)
    window_lo = config.hijack_start - ttl
    window_hi = config.hijack_start + config.hijack_duration
    total = config.total_population
    # Query offsets that can land inside the walk window per client.
    candidates = int((window_hi - window_lo) // interval) + 2

    events: list[tuple[int, float, int]] = []  # (resolver, time, gid)
    if np is not None and config.explicit_starts is None and total > 0:
        starts = _population_starts(config, 0, total, np)
        gids = np.arange(total, dtype=np.int64)
        first = np.maximum(np.ceil((window_lo - starts) / interval),
                           0.0).astype(np.int64)
        for extra in range(candidates):
            j = first + extra
            times = starts + j * interval
            mask = (j < query_count) & (times >= window_lo) & (times < window_hi)
            if not mask.any():
                continue
            events.extend((gid % config.resolvers, when, gid)
                          for gid, when in zip(gids[mask].tolist(), times[mask].tolist()))
    else:
        starts = _population_starts(config, 0, total, None)
        for gid, start in enumerate(starts):
            first = max(math.ceil((window_lo - start) / interval), 0)
            for extra in range(candidates):
                j = first + extra
                if j >= query_count:
                    break
                when = start + j * interval
                if when >= window_hi:
                    break
                if when >= window_lo:
                    events.append((gid % config.resolvers, when, gid))

    # Renewal walk per resolver over its time-ordered query events, cache
    # anchored empty at window_lo.  Hits do not refresh the TTL (caches count
    # it from fetch time), and the first miss at or after hijack_start is the
    # poisoning.
    events.sort()
    poisoned: dict[int, float] = {}
    cache_until: dict[int, float] = {}
    for resolver, when, _gid in events:
        if resolver in poisoned:
            continue
        if when < cache_until.get(resolver, -math.inf):
            continue  # served from the cached benign entry
        if when >= config.hijack_start:
            poisoned[resolver] = when
        else:
            cache_until[resolver] = when + ttl

    _POISON_MEMO[key] = poisoned
    return poisoned


# ---------------------------------------------------------------------------
# Stage 2: per-client poison query index
# ---------------------------------------------------------------------------

def cohort_poison_queries(config: FleetConfig, np: Optional[Any]
                          ) -> tuple[Any, Any, dict[int, float]]:
    """``(starts, poison_queries, poison_map)`` for the cohort's clients.

    ``poison_queries[i]`` is the 1-indexed query at which cohort client ``i``
    first receives the poisoned entry, or ``0`` if its resolver is never
    poisoned (or is poisoned only after the client's last query).
    """
    poisoned = resolver_poison_times(config, np)
    lo = config.client_offset
    hi = lo + config.clients
    starts = _population_starts(config, lo, hi, np)
    interval = config.policy.query_interval
    query_count = config.policy.query_count

    if np is not None:
        gids = np.arange(lo, hi, dtype=np.int64)
        resolver_ids = gids % config.resolvers
        by_resolver = np.full(config.resolvers, math.inf, dtype=np.float64)
        for resolver, when in poisoned.items():
            by_resolver[resolver] = when
        ptimes = by_resolver[resolver_ids]
        reached = np.isfinite(ptimes)
        delta = np.where(reached, ptimes - starts, 0.0)
        ks = np.ceil(delta / interval).astype(np.int64) + 1
        np.clip(ks, 1, None, out=ks)
        # ±1 fix-up around float division at exact grid points.
        ks = np.where(starts + (ks - 2) * interval >= ptimes,
                      ks - 1, ks)
        ks = np.where(starts + (ks - 1) * interval < ptimes, ks + 1, ks)
        np.clip(ks, 1, None, out=ks)
        ks = np.where(~reached | (ks > query_count), 0, ks)
        return starts, ks, poisoned

    ks: list[int] = []
    for index, start in enumerate(starts):
        gid = lo + index
        when = poisoned.get(gid % config.resolvers)
        if when is None:
            ks.append(0)
            continue
        if when <= start:
            ks.append(1)
            continue
        k = math.ceil((when - start) / interval) + 1
        if k > 1 and start + (k - 2) * interval >= when:
            k -= 1
        if start + (k - 1) * interval < when:
            k += 1
        k = max(k, 1)
        ks.append(0 if k > query_count else k)
    return starts, ks, poisoned


# ---------------------------------------------------------------------------
# Stage 3: batched update rounds (two-point offset model)
# ---------------------------------------------------------------------------

@dataclass
class _GroupShift:
    """Shift-phase outcome of one composition group (python lists)."""

    achieved: list[float]
    panic_rounds: list[int]
    updates_run: int  # identical for every member of the group


def _clamp(value: int, low: int, high: int) -> int:
    return low if value < low else (high if value > high else value)


def _run_group_shift(config: FleetConfig, comp: ClientComposition,
                     gids: Sequence[int], np: Optional[Any]) -> _GroupShift:
    """Run the update rounds for every client sharing one composition."""
    chronos = config.chronos
    members = len(gids)
    pool = comp.pool_size
    if pool == 0:
        # The packet client never starts updates on an empty pool.
        return _GroupShift([0.0] * members, [0] * members, 0)

    target = config.target_shift
    rounds = config.update_rounds + 1
    attempts = _attempts(chronos)
    trim = chronos.trim_count
    m_eff = min(chronos.sample_size, pool)
    survivors = m_eff - 2 * trim
    too_few = m_eff < 2 * trim + 1
    window = chronos.agreement_window
    # Panic: query the whole pool, trim a third each end, apply the mean.
    panic_trim = pool // 3
    panic_n = pool - 2 * panic_trim
    panic_mal = _clamp(comp.malicious - panic_trim, 0, panic_n)
    panic_target = panic_mal * target / panic_n
    mixed_fails = abs(target) > window

    rng = CounterRNG(config.seed, STREAM_SELECT, backend=np)
    sampler = None
    if not too_few:
        sampler = hypergeom_sampler(pool, comp.malicious, m_eff)
    degenerate = sampler is not None and sampler.low == sampler.high

    if np is not None:
        gid_arr = np.asarray(gids, dtype=np.int64)
        base = (gid_arr * rounds) * attempts
        shift = np.zeros(members, dtype=np.float64)
        panic_count = np.zeros(members, dtype=np.int64)
        for rnd in range(rounds):
            bound = chronos.local_bound(0.0 if rnd == 0 else chronos.poll_interval)
            active = np.ones(members, dtype=bool)
            if not too_few:
                for attempt in range(attempts):
                    if not active.any():
                        break
                    if degenerate:
                        mal = np.full(members, sampler.low, dtype=np.int64)
                    else:
                        counters = (base + rnd * attempts + attempt).astype(np.uint64)
                        mal = sampler.sample_from(rng.uniforms(counters), np=np)
                    surv = np.clip(mal - trim, 0, survivors)
                    means = surv * target / survivors - shift
                    ok = np.abs(means) <= bound
                    if mixed_fails:
                        ok &= (surv == 0) | (surv == survivors)
                    take = active & ok
                    shift = np.where(take, shift + means, shift)
                    active &= ~take
            if active.any():
                shift = np.where(active, panic_target, shift)
                panic_count += active
        return _GroupShift(shift.tolist(), panic_count.tolist(), rounds)

    shift_list = [0.0] * members
    panic_list = [0] * members
    for index, gid in enumerate(gids):
        shift = 0.0
        panics = 0
        base = (gid * rounds) * attempts
        for rnd in range(rounds):
            bound = chronos.local_bound(0.0 if rnd == 0 else chronos.poll_interval)
            resolved = False
            if not too_few:
                for attempt in range(attempts):
                    if degenerate:
                        mal = sampler.low
                    else:
                        uniform = rng.uniform_at(base + rnd * attempts + attempt)
                        mal = sampler.sample_from([uniform])[0]
                    surv = _clamp(mal - trim, 0, survivors)
                    means = surv * target / survivors - shift
                    if mixed_fails and 0 < surv < survivors:
                        continue
                    if abs(means) <= bound:
                        shift += means
                        resolved = True
                        break
            if not resolved:
                shift = panic_target
                panics += 1
        shift_list[index] = shift
        panic_list[index] = panics
    return _GroupShift(shift_list, panic_list, rounds)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class FleetEngine:
    """Runs one cohort of the fleet and reduces it to aggregate metrics."""

    def __init__(self, config: FleetConfig) -> None:
        self.config = config
        self.np = resolve_backend(config.backend)

    # -- helpers -----------------------------------------------------------
    def _group_indices(self, ks: Any) -> dict[int, list[int]]:
        """Cohort indices grouped by poison query (hence by composition)."""
        if self.np is not None:
            np = self.np
            return {int(k): np.nonzero(ks == k)[0].tolist()
                    for k in np.unique(ks).tolist()}
        groups: dict[int, list[int]] = {}
        for index, k in enumerate(ks):
            groups.setdefault(int(k), []).append(index)
        return groups

    # -- runs --------------------------------------------------------------
    def run(self) -> dict[str, Any]:
        """Aggregate metrics only — never materialises per-client records."""
        metrics, _ = self._run(detailed=False)
        return metrics

    def run_detailed(self) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """Aggregates plus one record per client (gate / debugging sizes)."""
        return self._run(detailed=True)

    def _run(self, detailed: bool) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        config = self.config
        np = self.np
        starts, ks, poisoned = cohort_poison_queries(config, np)
        groups = self._group_indices(ks)

        compositions = {k: compose_client(config.policy, k) for k in groups}
        histogram = [0] * (config.policy.query_count + 1)
        benign_total = 0
        malicious_total = 0
        cache_hits_total = 0
        two_thirds = 0
        fraction_terms: list[float] = []
        for k, indices in groups.items():
            comp = compositions[k]
            count = len(indices)
            histogram[k] += count
            benign_total += comp.benign * count
            malicious_total += comp.malicious * count
            cache_hits_total += comp.cache_hits * count
            if comp.attacker_has_two_thirds:
                two_thirds += count
            if comp.pool_size:
                fraction_terms.append(count * (comp.malicious / comp.pool_size))

        clients = config.clients
        metrics: dict[str, Any] = {
            "clients": clients,
            "client_offset": config.client_offset,
            "population": config.total_population,
            "resolvers": config.resolvers,
            "poisoned_resolvers": len(poisoned),
            "clients_poisoned": clients - len(groups.get(0, ())) if 0 in groups
                                else clients,
            "poison_histogram": histogram,
            "pool_benign_total": benign_total,
            "pool_malicious_total": malicious_total,
            "cache_hits_total": cache_hits_total,
            "clients_attacker_two_thirds": two_thirds,
            "attacker_fraction_sum": math.fsum(fraction_terms),
        }
        metrics["mean_attacker_fraction"] = (
            metrics["attacker_fraction_sum"] / clients if clients else 0.0)

        # Vectorized runs have no simulator to carry the facade; the fleet
        # engine reports through whatever observability is installed.  Pure
        # accounting — no RNG, nothing in the returned metrics — so cohort
        # results stay byte-identical with the facade on or off.
        obs = _current_obs()
        if obs.enabled:
            backend = "numpy" if np is not None else "python"
            obs.metrics.counter("fleet.cohorts_run", backend=backend).inc()
            obs.metrics.counter("fleet.clients_simulated").inc(clients)
            obs.metrics.counter("fleet.clients_poisoned").inc(
                metrics["clients_poisoned"])
            obs.metrics.counter("fleet.resolvers_poisoned").inc(len(poisoned))

        shifts: dict[int, _GroupShift] = {}
        if config.run_time_shift:
            shift_values: list[float] = []
            panic_total = 0
            updates_total = 0
            achieved_count = 0
            threshold = abs(config.target_shift) / 2
            for k, indices in groups.items():
                gids = [config.client_offset + i for i in indices]
                outcome = _run_group_shift(config, compositions[k], gids, np)
                shifts[k] = outcome
                shift_values.extend(outcome.achieved)
                panic_total += sum(outcome.panic_rounds)
                updates_total += outcome.updates_run * len(indices)
                achieved_count += sum(
                    1 for s in outcome.achieved if abs(s) >= threshold)
            metrics.update({
                "updates_run_total": updates_total,
                "panic_rounds_total": panic_total,
                "clients_shift_achieved": achieved_count,
                "achieved_shift_sum": math.fsum(shift_values),
            })
            metrics["mean_achieved_shift"] = (
                metrics["achieved_shift_sum"] / clients if clients else 0.0)

        if not detailed:
            return metrics, []

        start_list = starts.tolist() if np is not None else list(starts)
        k_list = ks.tolist() if np is not None else list(ks)
        records: list[dict[str, Any]] = []
        # Map each cohort index back to its position within its group so the
        # per-group shift outcomes can be read off.
        group_pos: dict[int, int] = {index: pos
                                     for indices in groups.values()
                                     for pos, index in enumerate(indices)}
        for index in range(clients):
            k = int(k_list[index])
            comp = compositions[k]
            record: dict[str, Any] = {
                "client": config.client_offset + index,
                "start": start_list[index],
                "resolver": (config.client_offset + index) % config.resolvers,
                "poison_at_query": k or None,
                "benign": comp.benign,
                "malicious": comp.malicious,
                "pool_size": comp.pool_size,
                "cache_hits": comp.cache_hits,
                "poisoned_queries": comp.poisoned_queries(),
                "attacker_two_thirds": comp.attacker_has_two_thirds,
            }
            if config.run_time_shift:
                outcome = shifts[k]
                pos = group_pos[index]
                achieved = outcome.achieved[pos]
                record.update({
                    "achieved_shift": achieved,
                    "shift_achieved": abs(achieved) >= abs(config.target_shift) / 2,
                    "updates_run": outcome.updates_run,
                    "panic_rounds": outcome.panic_rounds[pos],
                })
            records.append(record)
        return metrics, records
