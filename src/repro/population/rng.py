"""Counter-based random numbers with bit-identical numpy/python backends.

The fleet engine must produce *the same digests* whether or not numpy is
installed, across worker counts, and across cohort shardings.  Sequential
generators (``random.Random``, ``numpy.random.Generator``) cannot give that:
their streams depend on consumption order, and the two libraries do not
produce each other's bits.  Instead every draw here is a pure function of
``(seed, stream, counter)`` — the splitmix64 finalizer applied to a keyed
counter — so draw *indexing* replaces draw *ordering*:

* the pure-python path works on masked ints,
* the numpy path works on wrapping ``uint64`` arrays,

and both perform the identical 64-bit operations, so uniforms (and everything
derived from them) agree bit for bit.

Hypergeometric sampling — "how many of the ``m`` sampled servers are
attacker-controlled" — goes through :class:`HypergeomSampler`: an explicit
inverse-CDF table built *once in pure python* (exact ``math.comb`` ratios,
sequential float summation) and then shared by both backends, where
``bisect_right`` and ``numpy.searchsorted(side='right')`` agree by
construction.
"""

from __future__ import annotations

import math
import os
from bisect import bisect_right
from collections.abc import Sequence
from typing import Any, Optional

MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_STREAM_SALT = 0xD6E8FEB86659FD93

#: Environment variable selecting the backend: ``auto`` (default), ``numpy``
#: (require numpy, raise if missing) or ``python`` (force the fallback).
BACKEND_ENV = "REPRO_POPULATION_BACKEND"


class BackendError(RuntimeError):
    """Raised when a requested population backend is unavailable."""


def numpy_or_none() -> Optional[Any]:
    """The numpy module when importable, else ``None``."""
    try:
        import numpy
    except ImportError:
        return None
    return numpy


def resolve_backend(name: Optional[str] = None) -> Optional[Any]:
    """Resolve a backend request to a numpy module or ``None`` (pure python).

    ``name`` overrides the :data:`BACKEND_ENV` environment variable; both
    accept ``auto`` / ``numpy`` / ``python``.
    """
    requested = (name or os.environ.get(BACKEND_ENV) or "auto").strip().lower()
    if requested == "python":
        return None
    if requested == "numpy":
        module = numpy_or_none()
        if module is None:
            raise BackendError("numpy backend requested but numpy is not installed")
        return module
    if requested == "auto":
        return numpy_or_none()
    raise ValueError(f"unknown population backend {requested!r}; "
                     f"accepted: auto, numpy, python")


def _finalize_py(z: int) -> int:
    """The splitmix64 finalizer on a masked python int."""
    z &= MASK64
    z ^= z >> 30
    z = (z * _MIX1) & MASK64
    z ^= z >> 27
    z = (z * _MIX2) & MASK64
    z ^= z >> 31
    return z


def derive_key(seed: int, stream: int) -> int:
    """Combine a seed and a stream id into one 64-bit counter key."""
    key = _finalize_py((seed & MASK64) * _GOLDEN + _STREAM_SALT)
    return _finalize_py(key ^ ((stream & MASK64) * _MIX1 & MASK64))


class CounterRNG:
    """Uniform floats in ``[0, 1)`` addressed by ``(seed, stream, counter)``.

    ``uniforms(counters)`` accepts a python sequence of counters (or a numpy
    integer array on the numpy backend) and returns the matching uniforms —
    one float per counter, independent of call batching.
    """

    def __init__(self, seed: int, stream: int = 0, backend: Optional[Any] = None) -> None:
        self.seed = seed
        self.stream = stream
        self.key = derive_key(seed, stream)
        self.np = backend

    # -- raw 64-bit words --------------------------------------------------
    def words(self, counters: Sequence[int]) -> Any:
        if self.np is not None:
            np = self.np
            z = np.asarray(counters, dtype=np.uint64)
            z = z * np.uint64(_GOLDEN) + np.uint64(self.key)
            z ^= z >> np.uint64(30)
            z *= np.uint64(_MIX1)
            z ^= z >> np.uint64(27)
            z *= np.uint64(_MIX2)
            z ^= z >> np.uint64(31)
            return z
        key = self.key
        return [_finalize_py((counter * _GOLDEN + key) & MASK64) for counter in counters]

    # -- uniforms ----------------------------------------------------------
    def uniforms(self, counters: Sequence[int]) -> Any:
        """53-bit uniforms in ``[0, 1)``, one per counter, backend-identical."""
        words = self.words(counters)
        if self.np is not None:
            np = self.np
            return (words >> np.uint64(11)).astype(np.float64) * 2.0 ** -53
        return [(word >> 11) * 2.0 ** -53 for word in words]

    def uniform_at(self, counter: int) -> float:
        """One uniform by absolute counter (python float on both backends)."""
        return float(self.uniforms([counter])[0])


class HypergeomSampler:
    """Inverse-CDF sampling of the hypergeometric ``(N, K, m)`` distribution.

    Draws the number of attacker-controlled servers in a uniform sample of
    ``m`` servers from a pool of ``N`` containing ``K`` malicious — the only
    random quantity a Chronos update round depends on.  The CDF table is
    built in exact integer arithmetic (``math.comb``) and summed sequentially
    in python so both backends consume *the same floats*.
    """

    def __init__(self, pool: int, malicious: int, sample: int) -> None:
        if not 0 <= malicious <= pool:
            raise ValueError("malicious count must lie in [0, pool]")
        if not 0 <= sample <= pool:
            raise ValueError("sample size must lie in [0, pool]")
        self.pool = pool
        self.malicious = malicious
        self.sample = sample
        self.low = max(0, sample - (pool - malicious))
        self.high = min(sample, malicious)
        total = math.comb(pool, sample)
        cdf: list[float] = []
        acc = 0.0
        for j in range(self.low, self.high + 1):
            weight = math.comb(malicious, j) * math.comb(pool - malicious, sample - j)
            acc += weight / total
            cdf.append(acc)
        cdf[-1] = 1.0  # guard against summation residue at the top
        self.cdf = cdf
        self._cdf_np: Optional[Any] = None

    def sample_from(self, uniforms: Sequence[float], np: Optional[Any] = None) -> Any:
        """Map uniforms to counts; a degenerate support costs no arithmetic."""
        if self.low == self.high:
            if np is not None:
                return np.full(len(uniforms), self.low, dtype=np.int64)
            return [self.low] * len(uniforms)
        if np is not None:
            if self._cdf_np is None:
                self._cdf_np = np.asarray(self.cdf, dtype=np.float64)
            return np.searchsorted(self._cdf_np, uniforms, side="right") + self.low
        cdf = self.cdf
        return [self.low + bisect_right(cdf, u) for u in uniforms]


_SAMPLER_CACHE: dict = {}


def hypergeom_sampler(pool: int, malicious: int, sample: int) -> HypergeomSampler:
    """Memoised :class:`HypergeomSampler` (tables are tiny and reusable)."""
    key: tuple[int, int, int] = (pool, malicious, sample)
    sampler = _SAMPLER_CACHE.get(key)
    if sampler is None:
        sampler = HypergeomSampler(pool, malicious, sample)
        _SAMPLER_CACHE[key] = sampler
    return sampler
