"""Population-scale Chronos client simulation.

The packet-level scenarios simulate *one* victim at a time; this package
simulates *fleets* — up to millions of Chronos clients with staggered
re-query schedules sharing upstream resolvers — by vectorizing the per-client
pool/selection arithmetic instead of simulating packets.

Layout:

* :mod:`repro.population.rng` — counter-based, backend-parity random numbers
  (identical bits from the numpy and pure-python paths);
* :mod:`repro.population.batch` — closed-form batch pool composition and the
  vectorized Chronos selection rule;
* :mod:`repro.population.engine` — the fleet loop: resolver cache renewal,
  poisoning propagation, batched update rounds, streamed aggregates;
* :mod:`repro.population.scenario` — the ``population_sweep`` registry
  scenario plus cohort sharding across the :class:`SweepScheduler`;
* :mod:`repro.population.equivalence` — the packet-level cross-validation
  gate (digest-identical per-client outcomes on overlap populations).

numpy is an *optional* accelerator (the ``[population]`` extra): every code
path has a pure-python fallback producing bit-identical results, so the core
install stays dependency-free and digests never depend on which backend ran.
"""

from .batch import (
    BatchSelection,
    FleetPolicy,
    batch_chronos_select,
    batch_pool_composition,
)
from .engine import FleetConfig, FleetEngine
from .equivalence import equivalence_digests, population_digest
from .rng import CounterRNG, HypergeomSampler, resolve_backend
from .scenario import population_specs

__all__ = [
    "BatchSelection",
    "CounterRNG",
    "FleetConfig",
    "FleetEngine",
    "FleetPolicy",
    "HypergeomSampler",
    "batch_chronos_select",
    "batch_pool_composition",
    "equivalence_digests",
    "population_digest",
    "population_specs",
    "resolve_backend",
]
