"""Experiment E8: the §V mitigations and the residual attack they leave.

The paper suggests two changes to Chronos' pool generation:

* accept **at most 4 addresses** from any single DNS response, and
* **discard responses with high TTL values** (so a poisoned entry cannot
  silently absorb the remaining hourly queries from cache).

It then notes that even with both mitigations the dependency on DNS remains:
an attacker able to keep the victim's DNS hijacked for the whole 24-hour
window still controls every address in the pool.  This module evaluates all
of that, both in closed form and on the packet-level scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.pool_generation import PoolComposition
from ..dns.nameserver import POOL_RECORDS_PER_RESPONSE
from ..experiments.matrix import DefenseMatrixResult
from ..experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class MitigationRow:
    """One row of the mitigation-evaluation table."""

    scenario: str
    benign: int
    malicious: int
    malicious_fraction: float
    attacker_has_two_thirds: bool
    mode: str

    @staticmethod
    def header() -> str:
        return (f"{'scenario':<46} {'benign':>7} {'bad':>5} {'frac':>6} "
                f"{'>=2/3':>6} {'mode':>10}")

    def formatted(self) -> str:
        return (f"{self.scenario:<46} {self.benign:>7} {self.malicious:>5} "
                f"{self.malicious_fraction:>6.2f} {str(self.attacker_has_two_thirds):>6} "
                f"{self.mode:>10}")


def _row(scenario: str, composition: PoolComposition, mode: str) -> MitigationRow:
    return MitigationRow(
        scenario=scenario,
        benign=composition.benign,
        malicious=composition.malicious,
        malicious_fraction=composition.malicious_fraction,
        attacker_has_two_thirds=composition.attacker_has_two_thirds,
        mode=mode,
    )


def analytic_mitigation_table(query_count: int = 24, poison_at_query: int = 1,
                              attacker_records: int = 89,
                              benign_per_response: int = POOL_RECORDS_PER_RESPONSE,
                              ) -> list[MitigationRow]:
    """Closed-form evaluation of each mitigation against a single poisoning.

    * No mitigation: one poisoned response floods the pool (the §IV attack).
    * Max-4-addresses alone: the poisoned response contributes only 4
      addresses, but its huge TTL still starves the remaining queries from
      cache — the pool stays tiny and attacker-dominated, so the cap alone is
      *not* sufficient.
    * TTL filter: the poisoned response is rejected outright; later queries
      reach the benign servers again, so the attacker gains no pool members.
    * Both mitigations plus a 24-hour hijack: every response during the whole
      generation window is attacker-controlled, so the pool is 100 % malicious
      regardless of the caps — the residual risk §V concedes.
    """
    rows: list[MitigationRow] = []

    benign_before = (poison_at_query - 1) * benign_per_response

    unmitigated = PoolComposition(benign=benign_before, malicious=attacker_records)
    rows.append(_row("no mitigation, poisoning at query "
                     f"{poison_at_query}", unmitigated, "analytic"))

    # Record cap alone: the poisoned entry's >24 h TTL still absorbs every
    # later query, so no further benign servers are added.
    capped_malicious = min(attacker_records, benign_per_response)
    benign_after = (query_count - poison_at_query) * benign_per_response
    capped = PoolComposition(benign=benign_before, malicious=capped_malicious)
    rows.append(_row("max 4 addresses per response (alone)", capped, "analytic"))

    ttl_filtered = PoolComposition(benign=benign_before + benign_after, malicious=0)
    rows.append(_row("high-TTL responses discarded", ttl_filtered, "analytic"))

    # With both mitigations the TTL filter already rejects the poisoned
    # response, so the record cap adds nothing for a single poisoning.
    both = PoolComposition(benign=benign_before + benign_after, malicious=0)
    rows.append(_row("both mitigations (single poisoning)", both, "analytic"))

    full_hijack = PoolComposition(benign=0, malicious=query_count * benign_per_response)
    rows.append(_row("both mitigations, 24h DNS hijack (residual)", full_hijack, "analytic"))
    return rows


#: The five mitigation cases, as (row label, scenario parameter overlay).
#: An explicit ``param_sets`` sweep because the cases are heterogeneous —
#: a cartesian grid would run combinations the table does not report.
#: Each mitigation is a :class:`~repro.defenses.base.Defense` by registry
#: name, so this table and the closed form share one definition per
#: mitigation (the analytic rows describe exactly what ``address_cap`` and
#: ``ttl_discard`` implement).
MITIGATION_CASES = (
    ("no mitigation, single poisoning", {}),
    ("max 4 addresses per response (alone)", {"defenses": ("address_cap",)}),
    ("high-TTL responses discarded", {"defenses": ("ttl_discard",)}),
    ("both mitigations (single poisoning)",
     {"defenses": ("ttl_discard", "address_cap")}),
    ("both mitigations, 24h DNS hijack (residual)",
     {"defenses": ("ttl_discard", "address_cap"),
      # Pinned to query 1 regardless of the table's poison_at_query: the
      # residual attack's hijack window must cover the whole generation.
      "poison_at_query": 1,
      "hijack_duration": 24 * 3600.0 + 1200.0,
      "malicious_ttl": 300}),
)


def simulated_mitigation_table(poison_at_query: int = 1, seed: int = 1,
                               workers: int = 1) -> list[MitigationRow]:
    """Packet-level evaluation of the mitigations (slower, used by the bench).

    Driven through the experiment runner: one ``chronos_pool_attack`` run per
    mitigation case, optionally in parallel.
    """
    result = ExperimentRunner(
        "chronos_pool_attack",
        seeds=[seed],
        base_params={"poison_at_query": poison_at_query,
                     "hijack_duration": 600.0,
                     "run_time_shift": False},
        param_sets=[overlay for _, overlay in MITIGATION_CASES],
        workers=workers,
    ).run()
    return [
        _row(label,
             PoolComposition(benign=record.metrics["benign"],
                             malicious=record.metrics["malicious"]),
             "simulated")
        for (label, _), record in zip(MITIGATION_CASES, result.records)
    ]


#: Analytic-table row label -> the defense-matrix cell reproducing it.
SECTION5_MATRIX_CELLS = (
    ("no mitigation, poisoning at query 1", ("chronos_poisoning", "classic")),
    ("max 4 addresses per response (alone)", ("chronos_poisoning", "address_cap")),
    ("high-TTL responses discarded", ("chronos_poisoning", "ttl_discard")),
    ("both mitigations (single poisoning)", ("chronos_poisoning", "section5")),
    ("both mitigations, 24h DNS hijack (residual)", ("chronos_24h_hijack", "section5")),
)


@dataclass(frozen=True)
class Section5CellComparison:
    """One analytic §V row next to the defense-matrix cell reproducing it."""

    label: str
    attack: str
    stack: str
    analytic_two_thirds: bool
    analytic_fraction: float
    simulated_success_rate: float
    simulated_fraction: Optional[float]
    simulated_benign: Optional[float]
    simulated_malicious: Optional[float]

    @property
    def verdict_agrees(self) -> bool:
        """Whether simulation and closed form agree on the 2/3 outcome."""
        return self.analytic_two_thirds == (self.simulated_success_rate > 0.5)

    @property
    def fraction_agrees(self) -> bool:
        """Whether the malicious pool fractions coincide.

        They do for every §V row: where cache starvation makes the simulated
        *counts* smaller than the analytic credit (the TTL-filter rows leave
        the pool empty rather than refilled), the fraction still matches
        because both sides agree on who controls the pool.
        """
        if self.simulated_fraction is None:
            return False
        return abs(self.analytic_fraction - self.simulated_fraction) < 1e-9

    def formatted(self) -> str:
        fraction = (f"{self.simulated_fraction:.2f}"
                    if self.simulated_fraction is not None else "--")
        return (f"{self.label:<46} cell=({self.attack}, {self.stack}) "
                f"analytic>=2/3={str(self.analytic_two_thirds):<5} "
                f"simulated rate={self.simulated_success_rate:.2f} "
                f"frac={fraction} agree={self.verdict_agrees and self.fraction_agrees}")


def section5_from_matrix(matrix: DefenseMatrixResult) -> list[Section5CellComparison]:
    """Line the §V analytic table up against its defense-matrix cell slice.

    The matrix must contain the ``chronos_poisoning`` / ``chronos_24h_hijack``
    rows and the ``classic`` / ``address_cap`` / ``ttl_discard`` / ``section5``
    stacks (all present in the default grid).  The analytic side is evaluated
    under the same threat model the default matrix rows run (poisoning at
    query 1, the 89-record flood).  Every returned row agrees with the closed
    form on both the two-thirds verdict and the malicious pool fraction —
    including the residual ≈ 1.0 success of the sustained hijack.
    """
    analytic = {row.scenario: row
                for row in analytic_mitigation_table(poison_at_query=1,
                                                     attacker_records=89)}
    comparisons = []
    for label, (attack, stack) in SECTION5_MATRIX_CELLS:
        row = analytic[label]
        cell = matrix.cell(attack, stack)
        comparisons.append(Section5CellComparison(
            label=label,
            attack=attack,
            stack=stack,
            analytic_two_thirds=row.attacker_has_two_thirds,
            analytic_fraction=row.malicious_fraction,
            simulated_success_rate=cell.success_rate,
            simulated_fraction=cell.mean("attacker_fraction"),
            simulated_benign=cell.mean("benign"),
            simulated_malicious=cell.mean("malicious"),
        ))
    return comparisons
