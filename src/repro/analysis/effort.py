"""Experiments E3 and E6: attacker effort, before and after the DNS attack.

E3 reproduces the Chronos security claim quoted in §III — a strong MitM
attacker (just under a third of the pool) needs years-to-decades of effort to
shift a Chronos clock by 100 ms — and shows the same bound collapsing to a
single update round once the attacker owns two-thirds of the pool.

E6 reproduces the paper's headline comparison: measured in "number of DNS
poisonings the attacker must win" and "opportunities it gets to win one",
Chronos with its 24-query pool generation is *easier* to attack via DNS than
a traditional NTP client with its single lookup.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from ..core.security_analysis import (
    CumulativeShiftBound,
    ShiftAttackBound,
    cumulative_shift_bound,
    shift_attack_bound,
    sweep_malicious_fraction,
)


@dataclass(frozen=True)
class EffortRow:
    """One row of the E3 security-bound table."""

    scenario: str
    pool_size: int
    malicious: int
    malicious_fraction: float
    per_round_probability: float
    expected_years: float

    @staticmethod
    def header() -> str:
        return (f"{'scenario':<34} {'pool':>5} {'bad':>5} {'frac':>6} "
                f"{'P(round)':>12} {'years':>14}")

    def formatted(self) -> str:
        years = "inf" if self.expected_years == float("inf") else f"{self.expected_years:.3g}"
        return (f"{self.scenario:<34} {self.pool_size:>5} {self.malicious:>5} "
                f"{self.malicious_fraction:>6.2f} {self.per_round_probability:>12.3e} "
                f"{years:>14}")


def _row(scenario: str, bound: ShiftAttackBound) -> EffortRow:
    return EffortRow(
        scenario=scenario,
        pool_size=bound.pool_size,
        malicious=bound.malicious_servers,
        malicious_fraction=bound.malicious_fraction,
        per_round_probability=bound.per_round_probability,
        expected_years=bound.expected_years_to_success,
    )


def chronos_security_bound_table(pool_size: int = 96, sample_size: int = 15,
                                 poll_interval: float = 900.0) -> list[EffortRow]:
    """E3: expected effort across attacker pool fractions.

    The pre-attack rows (fractions below one third) should land in the
    years-to-decades regime the Chronos paper claims; the post-DNS-attack row
    (two thirds) should collapse to a round or two.
    """
    rows: list[EffortRow] = []
    scenarios = [
        ("MitM, 10% of pool corrupted", 0.10),
        ("MitM, 25% of pool corrupted", 0.25),
        ("MitM, just under 1/3 (Chronos bound)", 1.0 / 3.0 - 1e-9),
        ("After DNS pool attack (2/3 of pool)", 2.0 / 3.0),
        ("After DNS pool attack (89 of 133)", 89.0 / 133.0),
    ]
    for label, fraction in scenarios:
        malicious = int(fraction * pool_size)
        bound = shift_attack_bound(pool_size, malicious, sample_size, poll_interval)
        rows.append(_row(label, bound))
    return rows


def fraction_sweep_table(pool_size: int = 96, sample_size: int = 15,
                         poll_interval: float = 900.0,
                         fractions: Optional[Sequence[float]] = None) -> list[EffortRow]:
    """Fine-grained sweep of expected years versus attacker pool fraction."""
    if fractions is None:
        fractions = [i / 20.0 for i in range(0, 15)]
    bounds = sweep_malicious_fraction(pool_size, sample_size, fractions, poll_interval)
    return [_row(f"fraction={bound.malicious_fraction:.2f}", bound) for bound in bounds]


@dataclass(frozen=True)
class ShiftEffortRow:
    """One row of the 100 ms shift-effort table (the §III headline claim)."""

    scenario: str
    malicious_fraction: float
    target_shift_ms: float
    rounds_required: int
    per_round_probability: float
    expected_years: float
    panic_controlled: bool

    @staticmethod
    def header() -> str:
        return (f"{'scenario':<38} {'frac':>6} {'shift(ms)':>10} {'rounds':>7} "
                f"{'P(round)':>11} {'years':>12} {'panic?':>7}")

    def formatted(self) -> str:
        years = "inf" if self.expected_years == float("inf") else f"{self.expected_years:.3g}"
        return (f"{self.scenario:<38} {self.malicious_fraction:>6.2f} "
                f"{self.target_shift_ms:>10.0f} {self.rounds_required:>7} "
                f"{self.per_round_probability:>11.3e} {years:>12} "
                f"{str(self.panic_controlled):>7}")


def _shift_row(scenario: str, bound: CumulativeShiftBound, pool_size: int,
               malicious: int) -> ShiftEffortRow:
    return ShiftEffortRow(
        scenario=scenario,
        malicious_fraction=malicious / pool_size if pool_size else 0.0,
        target_shift_ms=bound.target_shift * 1000.0,
        rounds_required=bound.rounds_required,
        per_round_probability=bound.per_round_probability,
        expected_years=bound.expected_years,
        panic_controlled=bound.panic_controlled,
    )


def shift_effort_table(target_shift: float = 0.1, per_round_shift: float = 0.025,
                       pool_size: int = 96, sample_size: int = 15,
                       poll_interval: float = 900.0) -> list[ShiftEffortRow]:
    """E3: expected effort to shift the victim clock by ``target_shift`` seconds.

    The pre-attack rows (attacker below one third of the pool) land in the
    years-to-centuries regime — the same qualitative regime as the "20 years"
    the paper quotes from the Chronos analysis.  The post-DNS-attack rows
    (two thirds of the pool, including the exact 89-of-133 composition from
    Figure 1) collapse to under an hour.
    """
    scenarios = [
        ("MitM, 10% of pool corrupted", int(0.10 * pool_size)),
        ("MitM, 25% of pool corrupted", int(0.25 * pool_size)),
        ("MitM, just under 1/3 (Chronos bound)", pool_size // 3),
        ("After DNS pool attack (2/3 of pool)", (2 * pool_size) // 3 + 1),
        ("After DNS pool attack (89 of 133)", None),
    ]
    rows: list[ShiftEffortRow] = []
    for label, malicious in scenarios:
        size = pool_size
        if malicious is None:
            size, malicious = 133, 89
        bound = cumulative_shift_bound(size, malicious, sample_size,
                                       target_shift=target_shift,
                                       per_round_shift=per_round_shift,
                                       poll_interval=poll_interval)
        rows.append(_shift_row(label, bound, size, malicious))
    return rows


@dataclass(frozen=True)
class DNSAttackComparisonRow:
    """One row of the E6 comparison (plain NTP vs Chronos, DNS route)."""

    client: str
    dns_queries_observable: int
    poisonings_required: int
    poisoning_opportunities: int
    window_hours: float
    resulting_control: str

    @staticmethod
    def header() -> str:
        return (f"{'client':<22} {'DNS queries':>12} {'needed':>7} {'chances':>8} "
                f"{'window(h)':>10}  outcome")

    def formatted(self) -> str:
        return (f"{self.client:<22} {self.dns_queries_observable:>12} "
                f"{self.poisonings_required:>7} {self.poisoning_opportunities:>8} "
                f"{self.window_hours:>10.1f}  {self.resulting_control}")


def dns_attack_comparison(query_count: int = 24,
                          latest_winning_query: int = 12) -> list[DNSAttackComparisonRow]:
    """E6: the paper's argument that Chronos is the easier DNS target.

    A traditional client resolves the pool name once (one chance, and the
    poisoning must win that exact race); Chronos resolves it 24 times, and
    *any* success during the first ``latest_winning_query`` queries hands the
    attacker a two-thirds pool majority — strictly more opportunities for a
    strictly stronger outcome.
    """
    return [
        DNSAttackComparisonRow(
            client="traditional NTP",
            dns_queries_observable=1,
            poisonings_required=1,
            poisoning_opportunities=1,
            window_hours=0.0,
            resulting_control="all (up to 4) upstream servers until re-resolution",
        ),
        DNSAttackComparisonRow(
            client="Chronos",
            dns_queries_observable=query_count,
            poisonings_required=1,
            poisoning_opportunities=latest_winning_query,
            window_hours=float(latest_winning_query - 1),
            resulting_control=">= 2/3 of the server pool (regular + panic mode)",
        ),
    ]


def poisoning_success_probability(per_query_success: float, opportunities: int) -> float:
    """Probability of at least one poisoning success over ``opportunities`` tries."""
    if not 0.0 <= per_query_success <= 1.0:
        raise ValueError("per_query_success must be a probability")
    return 1.0 - (1.0 - per_query_success) ** max(opportunities, 0)


def end_to_end_success_table(per_query_success_rates: Sequence[float] = (0.05, 0.1, 0.3, 0.7),
                             chronos_opportunities: int = 12) -> list[dict]:
    """E6 extension: end-to-end success probability vs per-race success rate.

    For every per-race poisoning success probability, compare the overall
    probability that the DNS stage of the attack succeeds against a
    traditional client (one race) and against Chronos (``chronos_opportunities``
    races, any one of which suffices).
    """
    return [{
        "per_query_success": rate,
        "traditional_overall": poisoning_success_probability(rate, 1),
        "chronos_overall": poisoning_success_probability(rate, chronos_opportunities),
    } for rate in per_query_success_rates]
