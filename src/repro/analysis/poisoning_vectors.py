"""Experiment E7: the two poisoning vectors lead to the same pool compromise.

The paper stresses that *how* the cache is poisoned — BGP hijack or
defragmentation-cache injection — is irrelevant to the attack on Chronos.
This analysis (a) runs both vectors mechanically and checks they produce a
poisoned cache entry, and (b) sweeps the fragmentation vector's feasibility
over nameserver MTU behaviour and resolver fragment acceptance, using the
same condition model as the measurement study.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..attacks.frag_poisoning import (
    FragmentationAttackConditions,
    fragmentation_attack_success_probability,
)
from ..dns.message import response_size_for_a_records
from ..measurement.population import NameserverProfile, ResolverProfile


@dataclass(frozen=True)
class VectorFeasibilityRow:
    """Feasibility of the fragmentation vector for one nameserver/resolver pair."""

    nameserver_min_mtu: int
    nameserver_dnssec: bool
    resolver_accepts_fragments: bool
    response_size: int
    feasible: bool
    success_probability: float

    @staticmethod
    def header() -> str:
        return (f"{'ns min MTU':>10} {'DNSSEC':>7} {'frags ok':>9} {'resp B':>7} "
                f"{'feasible':>9} {'P(success)':>11}")

    def formatted(self) -> str:
        return (f"{self.nameserver_min_mtu:>10} {str(self.nameserver_dnssec):>7} "
                f"{str(self.resolver_accepts_fragments):>9} {self.response_size:>7} "
                f"{str(self.feasible):>9} {self.success_probability:>11.3f}")


def feasibility_row(nameserver: NameserverProfile, resolver: ResolverProfile,
                    probe_record_count: int = 40,
                    qname: str = "pool.ntp.org") -> VectorFeasibilityRow:
    """Evaluate the fragmentation vector for one measured pair."""
    response_size = response_size_for_a_records(qname, probe_record_count)
    conditions = FragmentationAttackConditions(
        nameserver_min_mtu=nameserver.min_fragmentation_mtu,
        nameserver_has_dnssec=nameserver.supports_dnssec,
        resolver_accepts_fragments=resolver.accepts_any_fragments,
        resolver_min_fragment_mtu=resolver.min_accepted_fragment_mtu or 1500,
        response_size=response_size,
    )
    return VectorFeasibilityRow(
        nameserver_min_mtu=nameserver.min_fragmentation_mtu,
        nameserver_dnssec=nameserver.supports_dnssec,
        resolver_accepts_fragments=resolver.accepts_any_fragments,
        response_size=response_size,
        feasible=conditions.feasible,
        success_probability=fragmentation_attack_success_probability(conditions),
    )


def mtu_sweep(mtus: Sequence[int] = (1500, 1400, 1280, 548, 296, 68),
              probe_record_count: int = 40,
              qname: str = "pool.ntp.org") -> list[VectorFeasibilityRow]:
    """Feasibility of the fragmentation vector versus nameserver MTU behaviour."""
    resolver = ResolverProfile(identifier="victim", min_accepted_fragment_mtu=68,
                               triggerable_via_smtp=True, open_resolver=False)
    rows = []
    for mtu in mtus:
        nameserver = NameserverProfile(address="192.0.2.53",
                                       min_fragmentation_mtu=mtu,
                                       supports_dnssec=False)
        rows.append(feasibility_row(nameserver, resolver,
                                    probe_record_count=probe_record_count, qname=qname))
    return rows


def vulnerable_pair_fraction(nameservers: Sequence[NameserverProfile],
                             resolvers: Sequence[ResolverProfile],
                             probe_record_count: int = 40) -> float:
    """Fraction of (nameserver, resolver) pairs where the vector is feasible."""
    if not nameservers or not resolvers:
        return 0.0
    feasible = 0
    total = 0
    for nameserver in nameservers:
        for resolver in resolvers:
            total += 1
            row = feasibility_row(nameserver, resolver, probe_record_count=probe_record_count)
            if row.feasible:
                feasible += 1
    return feasible / total
