"""Experiment E1/E2: pool composition as a function of the poisoned query index.

Produces the data behind Figure 1 and the §IV claim that a poisoning landing
at or before the 12th of the 24 hourly queries leaves the attacker with at
least two-thirds of the Chronos pool.  Two modes:

* *analytic* — the closed-form arithmetic of the paper (fast, exact);
* *simulated* — the full packet-level scenario
  (:class:`repro.attacks.chronos_pool_attack.ChronosPoolAttackScenario`),
  which also accounts for de-duplication and the benign zone's rotation.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from typing import Optional

from ..attacks.chronos_pool_attack import analytic_pool_composition
from ..core.pool_generation import PoolComposition
from ..experiments.runner import run_scenario


@dataclass(frozen=True)
class PoolCompositionRow:
    """One row of the E2 sweep."""

    poison_at_query: Optional[int]
    benign: int
    malicious: int
    malicious_fraction: float
    attacker_has_two_thirds: bool
    mode: str

    @staticmethod
    def header() -> str:
        return (f"{'poison@query':>13} {'benign':>7} {'malicious':>10} "
                f"{'fraction':>9} {'>=2/3':>6} {'mode':>10}")

    def formatted(self) -> str:
        label = "none" if self.poison_at_query is None else str(self.poison_at_query)
        return (f"{label:>13} {self.benign:>7} {self.malicious:>10} "
                f"{self.malicious_fraction:>9.3f} {str(self.attacker_has_two_thirds):>6} "
                f"{self.mode:>10}")


def _row_from_composition(poison_at_query: Optional[int], composition: PoolComposition,
                          mode: str) -> PoolCompositionRow:
    return PoolCompositionRow(
        poison_at_query=poison_at_query,
        benign=composition.benign,
        malicious=composition.malicious,
        malicious_fraction=composition.malicious_fraction,
        attacker_has_two_thirds=composition.attacker_has_two_thirds,
        mode=mode,
    )


def analytic_sweep(query_count: int = 24, benign_per_response: int = 4,
                   attacker_records: int = 89,
                   indices: Optional[Sequence[int]] = None) -> list[PoolCompositionRow]:
    """Closed-form sweep over every candidate poisoning index (plus no attack)."""
    if indices is None:
        indices = range(1, query_count + 1)
    rows = [_row_from_composition(None,
                                  analytic_pool_composition(None, query_count,
                                                            benign_per_response,
                                                            attacker_records),
                                  mode="analytic")]
    for index in indices:
        composition = analytic_pool_composition(index, query_count, benign_per_response,
                                                attacker_records)
        rows.append(_row_from_composition(index, composition, mode="analytic"))
    return rows


def crossover_query_index(rows: Sequence[PoolCompositionRow]) -> Optional[int]:
    """Largest poisoning index in ``rows`` that still yields a 2/3 majority."""
    winning = [row.poison_at_query for row in rows
               if row.poison_at_query is not None and row.attacker_has_two_thirds]
    return max(winning) if winning else None


def simulated_composition(poison_at_query: Optional[int], seed: int = 1,
                          dedupe: bool = True,
                          attacker_records: Optional[int] = None,
                          benign_server_count: int = 200) -> PoolCompositionRow:
    """Run the packet-level scenario for one poisoning index (via the registry)."""
    metrics = run_scenario("chronos_pool_attack", seed, {
        "poison_at_query": poison_at_query,
        "attacker_record_count": attacker_records,
        "benign_server_count": benign_server_count,
        "dedupe": dedupe,
        "run_time_shift": False,
    })
    composition = PoolComposition(benign=metrics["benign"],
                                  malicious=metrics["malicious"])
    return _row_from_composition(poison_at_query, composition, mode="simulated")


def simulated_sweep(indices: Sequence[int], seed: int = 1,
                    dedupe: bool = True) -> list[PoolCompositionRow]:
    """Packet-level sweep over selected poisoning indices."""
    rows = [simulated_composition(None, seed=seed, dedupe=dedupe)]
    rows.extend(simulated_composition(index, seed=seed, dedupe=dedupe)
                for index in indices)
    return rows


def figure1_report(poison_at_query: int = 1, seed: int = 1) -> dict:
    """The Figure-1 numbers: 4·11 = 44 benign versus 89 malicious.

    The figure depicts the poisoning landing early (the attacker keeps
    answering until query 12); the analytic composition at the crossover
    index reproduces the 44-vs-89 arithmetic, while the simulated scenario
    reproduces the same outcome on the wire.
    """
    analytic_at_12 = analytic_pool_composition(12)
    simulated = simulated_composition(poison_at_query, seed=seed, dedupe=False)
    return {
        "analytic_benign_at_query_12": analytic_at_12.benign,
        "analytic_malicious": analytic_at_12.malicious,
        "analytic_fraction": analytic_at_12.malicious_fraction,
        "simulated_benign": simulated.benign,
        "simulated_malicious": simulated.malicious,
        "simulated_fraction": simulated.malicious_fraction,
        "attack_succeeded": simulated.attacker_has_two_thirds,
    }
