"""Experiment E5: how many A records fit in a single DNS response.

Reproduces the §IV statement that the attacker can fit "up to 89" addresses
into a single non-fragmented DNS response — computed from the real wire
layout rather than assumed — and tabulates the capacity for other payload
budgets (the classic 512-byte limit, the IPv6-safe 1232 bytes, and the
fragmentation thresholds the measurement study probes).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..dns.message import (
    CLASSIC_UDP_LIMIT,
    MAX_UNFRAGMENTED_UDP_PAYLOAD,
    DNSMessage,
    max_a_records_for_payload,
    response_size_for_a_records,
)
from ..dns.records import a_record
from ..netsim.packets import IPV4_HEADER_SIZE, UDP_HEADER_SIZE

#: Payload budgets worth tabulating (bytes of UDP payload).
INTERESTING_PAYLOAD_LIMITS = (
    CLASSIC_UDP_LIMIT,          # pre-EDNS limit
    1232,                       # the "DNS flag day 2020" recommendation
    MAX_UNFRAGMENTED_UDP_PAYLOAD,  # single Ethernet frame
    4096,                       # common EDNS advertisement
)


@dataclass(frozen=True)
class CapacityRow:
    """One row of the capacity table."""

    payload_limit: int
    mtu_equivalent: int
    max_a_records: int
    exact_response_size: int

    @staticmethod
    def header() -> str:
        return f"{'payload':>8} {'~MTU':>6} {'max A records':>14} {'response bytes':>15}"

    def formatted(self) -> str:
        return (f"{self.payload_limit:>8} {self.mtu_equivalent:>6} "
                f"{self.max_a_records:>14} {self.exact_response_size:>15}")


def capacity_row(payload_limit: int, qname: str = "pool.ntp.org") -> CapacityRow:
    """Capacity and exact encoded size for one payload budget."""
    count = max_a_records_for_payload(qname, payload_limit)
    size = response_size_for_a_records(qname, count)
    return CapacityRow(
        payload_limit=payload_limit,
        mtu_equivalent=payload_limit + UDP_HEADER_SIZE + IPV4_HEADER_SIZE,
        max_a_records=count,
        exact_response_size=size,
    )


def capacity_table(payload_limits: Sequence[int] = INTERESTING_PAYLOAD_LIMITS,
                   qname: str = "pool.ntp.org") -> list[CapacityRow]:
    """The full capacity table for the E5 benchmark."""
    return [capacity_row(limit, qname) for limit in payload_limits]


def paper_capacity_claim(qname: str = "pool.ntp.org") -> int:
    """The number the paper quotes (89) for a non-fragmented response."""
    return max_a_records_for_payload(qname, MAX_UNFRAGMENTED_UDP_PAYLOAD)


def verify_capacity_by_encoding(qname: str = "pool.ntp.org",
                                payload_limit: int = MAX_UNFRAGMENTED_UDP_PAYLOAD) -> dict:
    """Cross-check the analytic capacity against an actually-encoded message.

    Builds a real response with the computed number of records, encodes it,
    and confirms (a) it fits in the budget and (b) one more record would not.
    """
    count = max_a_records_for_payload(qname, payload_limit)
    query = DNSMessage.query(0x1234, qname)
    records = [a_record(qname, f"198.51.100.{(i % 254) + 1}", 172800) for i in range(count)]
    response = query.make_response(records)
    one_more = query.make_response(records + [a_record(qname, "198.51.100.1", 172800)])
    return {
        "record_count": count,
        "encoded_size": response.wire_size,
        "fits": response.wire_size <= payload_limit,
        "one_more_overflows": one_more.wire_size > payload_limit,
    }
