"""Experiment-level analyses: one module per paper claim / figure family."""

from .effort import (
    DNSAttackComparisonRow,
    EffortRow,
    ShiftEffortRow,
    chronos_security_bound_table,
    dns_attack_comparison,
    end_to_end_success_table,
    fraction_sweep_table,
    poisoning_success_probability,
    shift_effort_table,
)
from .mitigations import (
    MITIGATION_CASES,
    SECTION5_MATRIX_CELLS,
    MitigationRow,
    Section5CellComparison,
    analytic_mitigation_table,
    section5_from_matrix,
    simulated_mitigation_table,
)
from .poisoning_vectors import (
    VectorFeasibilityRow,
    feasibility_row,
    mtu_sweep,
    vulnerable_pair_fraction,
)
from .pool_composition import (
    PoolCompositionRow,
    analytic_sweep,
    crossover_query_index,
    figure1_report,
    simulated_composition,
    simulated_sweep,
)
from .response_capacity import (
    INTERESTING_PAYLOAD_LIMITS,
    CapacityRow,
    capacity_row,
    capacity_table,
    paper_capacity_claim,
    verify_capacity_by_encoding,
)

__all__ = [
    "DNSAttackComparisonRow",
    "EffortRow",
    "ShiftEffortRow",
    "chronos_security_bound_table",
    "dns_attack_comparison",
    "end_to_end_success_table",
    "fraction_sweep_table",
    "poisoning_success_probability",
    "shift_effort_table",
    "MITIGATION_CASES",
    "SECTION5_MATRIX_CELLS",
    "MitigationRow",
    "Section5CellComparison",
    "analytic_mitigation_table",
    "section5_from_matrix",
    "simulated_mitigation_table",
    "VectorFeasibilityRow",
    "feasibility_row",
    "mtu_sweep",
    "vulnerable_pair_fraction",
    "PoolCompositionRow",
    "analytic_sweep",
    "crossover_query_index",
    "figure1_report",
    "simulated_composition",
    "simulated_sweep",
    "INTERESTING_PAYLOAD_LIMITS",
    "CapacityRow",
    "capacity_row",
    "capacity_table",
    "paper_capacity_claim",
    "verify_capacity_by_encoding",
]
