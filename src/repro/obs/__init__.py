"""Zero-dependency observability: deterministic tracing + metrics.

The subsystem is deliberately *out of band*: nothing recorded here ever
reaches :class:`~repro.experiments.results.RunRecord`, so every pinned
matrix/equivalence digest is byte-identical whether observability is
enabled or disabled.  Trace timestamps come from the simulator clock
(never wall clock on the deterministic path); wall-clock telemetry lives
in :class:`~repro.experiments.scheduler.SweepStats` instead.

Three pieces:

* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters, gauges
  and histograms with immutable, associatively/commutatively mergeable
  snapshots (how sweep workers ship telemetry back through the pool);
* :class:`~repro.obs.trace.Tracer` — a ring-buffered recorder of
  sim-time-stamped instants and spans, exportable as JSONL and as Chrome
  trace-event JSON (Perfetto-viewable);
* :mod:`~repro.obs.timeline` — reconstructs the per-query poisoning-race
  timeline (attacker burst vs legitimate response vs defense verdicts)
  from a trace.

Wiring: :class:`~repro.netsim.simulator.Simulator` snapshots
:func:`current` at construction and binds its clock to the tracer, and
every instrumented layer reaches observability through its simulator (or
through :func:`current` for the few pure functions).  The default is the
shared disabled singleton :data:`NULL_OBS` — one attribute check per
instrumented site, nothing allocated, nothing recorded.

Enabling it:

* ``with obs.capture() as ob:`` — scoped: runs built inside the block
  observe into ``ob``; or
* ``REPRO_TRACE=1`` in the environment — process-global; set it to a
  path ending in ``.json`` (Chrome trace) or ``.jsonl`` to also write
  the trace out at interpreter exit.  ``REPRO_TRACE_CAPACITY`` sizes the
  ring buffer (default 65536 events).
"""

from __future__ import annotations

import atexit
import os
from collections.abc import Iterator
from contextlib import contextmanager
from typing import Callable, Optional

from .metrics import MetricsRegistry, MetricsSnapshot
from .trace import DEFAULT_CAPACITY, TraceEvent, Tracer

__all__ = [
    "NULL_OBS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Observability",
    "TraceEvent",
    "Tracer",
    "capture",
    "current",
    "install",
]

#: Environment variable enabling process-global observability.
TRACE_ENV_VAR = "REPRO_TRACE"
CAPACITY_ENV_VAR = "REPRO_TRACE_CAPACITY"


class Observability:
    """A tracer and a metrics registry behind one ``enabled`` flag.

    Hot paths check ``obs.enabled`` once and only then build event args or
    resolve instruments, so a disabled facade costs a single attribute
    load and branch per instrumented site.
    """

    __slots__ = ("enabled", "trace", "metrics")

    def __init__(self, enabled: bool = True, trace: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.enabled = enabled
        self.trace = trace if trace is not None else Tracer(capacity=capacity,
                                                            enabled=enabled)
        self.metrics = metrics if metrics is not None else MetricsRegistry(enabled=enabled)

    @classmethod
    def disabled(cls) -> Observability:
        return cls(enabled=False, capacity=1)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Stamp subsequent trace events with ``clock()`` (simulated time).

        Called by every :class:`~repro.netsim.simulator.Simulator` that
        adopts this facade; the most recently constructed simulator wins,
        which is the single-run capture case the tracer exists for.
        No-op when disabled, so the shared :data:`NULL_OBS` singleton is
        never mutated.
        """
        if self.enabled:
            self.trace.use_clock(clock)


#: The shared disabled facade: the default for every simulator.
NULL_OBS = Observability.disabled()

#: The installed facade; ``None`` means "not resolved yet — consult the
#: environment on first use".
_current: Optional[Observability] = None


def _from_env() -> Observability:
    value = os.environ.get(TRACE_ENV_VAR, "").strip()
    if value in ("", "0", "off", "false"):
        return NULL_OBS
    capacity = int(os.environ.get(CAPACITY_ENV_VAR, str(DEFAULT_CAPACITY)))
    obs = Observability(capacity=capacity)
    if value.endswith(".jsonl"):
        atexit.register(lambda: obs.trace.write_jsonl(value))
    elif value.endswith(".json"):
        atexit.register(lambda: obs.trace.write_chrome_trace(value))
    return obs


def current() -> Observability:
    """The facade new simulators adopt (see module docstring for wiring)."""
    global _current
    if _current is None:
        _current = _from_env()
    return _current


def install(obs: Optional[Observability]) -> Optional[Observability]:
    """Install ``obs`` as the current facade; returns the previous one.

    Passing ``None`` resets to "unresolved" so the next :func:`current`
    consults ``REPRO_TRACE`` again.
    """
    global _current
    previous = _current
    _current = obs
    return previous


@contextmanager
def capture(capacity: int = DEFAULT_CAPACITY,
            trace: bool = True, metrics: bool = True) -> Iterator[Observability]:
    """Scoped observability: simulators built inside observe into the yield.

    ``trace=False`` keeps the ring buffer off while still collecting
    metrics (what the sweep scheduler's per-task collection uses);
    ``metrics=False`` does the reverse.
    """
    obs = Observability(
        trace=Tracer(capacity=capacity, enabled=trace),
        metrics=MetricsRegistry(enabled=metrics),
    )
    previous = install(obs)
    try:
        yield obs
    finally:
        install(previous)
