"""Structured event tracing stamped with *simulated* time.

The tracer records two event shapes — instants (``ph="i"``) and complete
spans (``ph="X"``, with a duration) — into a bounded ring buffer.  Every
event is stamped by the tracer's ``clock``, which the deterministic path
binds to the owning :class:`~repro.netsim.simulator.Simulator`'s clock, so
a trace of a seeded run is itself a pure function of the seed: no wall
clock ever reaches a recorded timestamp.  (Wall-clock telemetry — worker
utilization, per-task seconds — lives in
:class:`~repro.experiments.scheduler.SweepStats`, deliberately outside the
trace.)

Two export formats:

* **JSONL** — one event per line, loss-free round trip via
  :meth:`Tracer.to_jsonl` / :func:`events_from_jsonl`;
* **Chrome trace-event JSON** — :meth:`Tracer.chrome_trace` emits the
  ``traceEvents`` array format that https://ui.perfetto.dev and
  ``chrome://tracing`` open directly.  Event categories become named
  tracks (one ``tid`` per category), timestamps are converted from
  simulated seconds to microseconds.

The ring buffer (``capacity`` events) makes tracing safe to leave enabled
through multi-hour simulated sweeps: old events are evicted, the eviction
count is reported, and memory stays bounded.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable, Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 65536


def _zero_clock() -> float:
    return 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event; ``args`` is an ordered tuple of (key, value)."""

    name: str
    phase: str  # "i" (instant) or "X" (complete span with duration)
    ts: float  # simulated seconds
    category: str = ""
    dur: float = 0.0
    args: tuple[tuple[str, object], ...] = ()
    #: Monotone sequence number: total order for events at the same instant.
    seq: int = 0

    def arg(self, key: str, default: object = None) -> object:
        for k, v in self.args:
            if k == key:
                return v
        return default

    @property
    def args_dict(self) -> dict[str, object]:
        return dict(self.args)

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name, "ph": self.phase, "ts": self.ts,
            "cat": self.category, "dur": self.dur,
            "args": [[k, v] for k, v in self.args], "seq": self.seq,
        }, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> TraceEvent:
        data = json.loads(line)
        return cls(
            name=data["name"], phase=data["ph"], ts=data["ts"],
            category=data.get("cat", ""), dur=data.get("dur", 0.0),
            args=tuple((k, v) for k, v in data.get("args", ())),
            seq=data.get("seq", 0),
        )


class Tracer:
    """Bounded recorder of :class:`TraceEvent`\\ s.

    ``clock`` supplies timestamps; :meth:`use_clock` rebinds it (the
    simulator binds itself at construction).  A disabled tracer records
    nothing and costs one attribute check per call — instrumented sites
    additionally guard with ``obs.enabled`` so the disabled path never
    even builds the args.
    """

    __slots__ = ("enabled", "clock", "capacity", "_events", "_seq",
                 "events_recorded", "events_evicted")

    def __init__(self, clock: Callable[[], float] | None = None,
                 capacity: int = DEFAULT_CAPACITY, enabled: bool = True) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.enabled = enabled
        self.clock = clock or _zero_clock
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self.events_recorded = 0
        self.events_evicted = 0

    def use_clock(self, clock: Callable[[], float]) -> None:
        self.clock = clock

    # -- recording -------------------------------------------------------------
    def instant(self, name: str, category: str = "", **args: object) -> None:
        """Record a zero-duration event at the current simulated time."""
        if not self.enabled:
            return
        self._append(TraceEvent(name=name, phase="i", ts=self.clock(),
                                category=category,
                                args=tuple(args.items()), seq=self._seq))

    def complete(self, name: str, start: float, category: str = "",
                 **args: object) -> None:
        """Record a span from ``start`` (simulated seconds) to now."""
        if not self.enabled:
            return
        now = self.clock()
        self._append(TraceEvent(name=name, phase="X", ts=start,
                                dur=max(now - start, 0.0), category=category,
                                args=tuple(args.items()), seq=self._seq))

    @contextmanager
    def span(self, name: str, category: str = "", **args: object) -> Iterator[None]:
        """Context manager recording a complete span around its body."""
        if not self.enabled:
            yield
            return
        start = self.clock()
        try:
            yield
        finally:
            self.complete(name, start, category=category, **args)

    def _append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.events_evicted += 1
        self._events.append(event)
        self._seq += 1
        self.events_recorded += 1

    # -- access ----------------------------------------------------------------
    def events(self) -> tuple[TraceEvent, ...]:
        """The retained events, oldest first."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.events_evicted = 0
        self.events_recorded = 0

    # -- JSONL export ----------------------------------------------------------
    def to_jsonl(self) -> str:
        return "\n".join(event.to_json() for event in self._events)

    def write_jsonl(self, path: str) -> None:
        with Path(path).open("w") as handle:
            for event in self._events:
                handle.write(event.to_json() + "\n")

    # -- Chrome trace-event export ---------------------------------------------
    def chrome_trace(self, process_name: str = "repro") -> dict:
        return chrome_trace(self._events, process_name=process_name)

    def write_chrome_trace(self, path: str, process_name: str = "repro") -> None:
        with Path(path).open("w") as handle:
            json.dump(self.chrome_trace(process_name=process_name), handle)


def events_from_jsonl(text: str) -> list[TraceEvent]:
    """Parse events written by :meth:`Tracer.to_jsonl`/``write_jsonl``."""
    return [TraceEvent.from_json(line)
            for line in text.splitlines() if line.strip()]


def chrome_trace(events: Iterable[TraceEvent], process_name: str = "repro") -> dict:
    """Render events as a Chrome trace-event JSON object.

    Categories map to threads (one Perfetto track per category, named via
    ``thread_name`` metadata); simulated seconds map to microseconds, the
    unit the format requires.  Open the resulting file directly in
    https://ui.perfetto.dev.
    """
    trace_events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": 1, "tid": 0,
        "args": {"name": process_name},
    }]
    tids: dict[str, int] = {}
    for event in events:
        category = event.category or "events"
        tid = tids.get(category)
        if tid is None:
            tid = tids[category] = len(tids) + 1
            trace_events.append({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
                "args": {"name": category},
            })
        rendered: dict = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts * 1e6,
            "pid": 1,
            "tid": tid,
            "cat": category,
            "args": event.args_dict,
        }
        if event.phase == "X":
            rendered["dur"] = event.dur * 1e6
        elif event.phase == "i":
            rendered["s"] = "t"  # thread-scoped instant
        trace_events.append(rendered)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def ordered(events: Sequence[TraceEvent]) -> list[TraceEvent]:
    """Events sorted by (timestamp, sequence) — a stable total order."""
    return sorted(events, key=lambda event: (event.ts, event.seq))
