"""Labeled counter/gauge/histogram registry with mergeable snapshots.

Design constraints, in order:

1. **O(1) no-op when disabled.**  A disabled registry hands out shared null
   instruments whose mutators do nothing; instrumented hot paths guard with
   a single ``if obs.enabled`` check, so sweeps that never asked for
   observability pay one attribute load and a branch.
2. **Out-of-band.**  Metrics never enter :class:`~repro.experiments.results.
   RunRecord` — the pinned matrix digests are computed over run metrics
   only, so enabling or disabling this registry cannot move a digest.
3. **Mergeable snapshots.**  :meth:`MetricsRegistry.snapshot` freezes the
   registry into an immutable :class:`MetricsSnapshot`; snapshots merge
   associatively and commutatively (counters/histograms add, gauges take
   the high-water mark), so :class:`~repro.experiments.scheduler.
   SweepScheduler` workers can ship per-task snapshots back through the
   pool in any completion order and the fold is still deterministic.
   The algebra is property-tested under ``hypothesis``.

Instrument keys are ``(name, sorted label pairs)``; the rendered form is
Prometheus-flavoured: ``dns.responses{verdict=rejected}``.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Optional

#: A fully-resolved instrument key: (name, ((label, value), ...)).
MetricKey = tuple[str, tuple[tuple[str, str], ...]]

#: Default histogram bucket upper bounds: sub-millisecond through minutes,
#: suiting both simulated-seconds latencies and wall-clock task times.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 300.0)


def metric_key(name: str, labels: Mapping[str, object]) -> MetricKey:
    return (name, tuple(sorted((k, str(v)) for k, v in labels.items())))


def render_key(key: MetricKey) -> str:
    """``name{a=x,b=y}`` — the stable text form used in exports."""
    name, labels = key
    if not labels:
        return name
    return name + "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """A monotonically-increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value; snapshots keep the high-water mark.

    Max-merging (rather than last-write-wins) is what keeps snapshot
    merging commutative: "deepest queue seen" is well-defined no matter
    which worker's snapshot folds in first.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def track_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram (counts per upper bound, plus sum/min/max)."""

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def observe(self, value: float) -> None:
        slot = len(self.bounds)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                slot = index
                break
        self.counts[slot] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def track_max(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


@dataclass(frozen=True)
class HistogramSnapshot:
    """Immutable histogram state; merge requires identical bounds."""

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    total: float
    minimum: Optional[float]
    maximum: Optional[float]

    def merge(self, other: HistogramSnapshot) -> HistogramSnapshot:
        if self.bounds != other.bounds:
            raise ValueError(f"cannot merge histograms with different bounds: "
                             f"{self.bounds} != {other.bounds}")
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=_merge_optional(min, self.minimum, other.minimum),
            maximum=_merge_optional(max, self.maximum, other.maximum),
        )

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None


def _merge_optional(op, a: Optional[float], b: Optional[float]) -> Optional[float]:
    if a is None:
        return b
    if b is None:
        return a
    return op(a, b)


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, mergeable view of one registry's state.

    Merge semantics — chosen so ``merge`` is associative and commutative
    (property-tested in ``tests/test_obs_metrics.py``):

    * counters add;
    * gauges take the maximum (high-water mark);
    * histograms add bucket-wise (``total`` merges are exact for the
      integer-valued observations the reproduction records; float
      observations are summed in merge order, which commutes for the
      magnitudes involved).
    """

    counters: Mapping[MetricKey, int] = field(default_factory=dict)
    gauges: Mapping[MetricKey, float] = field(default_factory=dict)
    histograms: Mapping[MetricKey, HistogramSnapshot] = field(default_factory=dict)

    EMPTY: "MetricsSnapshot" = None  # type: ignore[assignment] # set below

    def merge(self, other: MetricsSnapshot) -> MetricsSnapshot:
        counters = dict(self.counters)
        for key, value in other.counters.items():
            counters[key] = counters.get(key, 0) + value
        gauges = dict(self.gauges)
        for key, value in other.gauges.items():
            gauges[key] = max(gauges.get(key, value), value)
        histograms = dict(self.histograms)
        for key, value in other.histograms.items():
            histograms[key] = (histograms[key].merge(value)
                               if key in histograms else value)
        return MetricsSnapshot(counters=counters, gauges=gauges, histograms=histograms)

    @staticmethod
    def merge_all(snapshots: Iterable[Optional["MetricsSnapshot"]]) -> MetricsSnapshot:
        merged = MetricsSnapshot()
        for snapshot in snapshots:
            if snapshot is not None:
                merged = merged.merge(snapshot)
        return merged

    # -- convenience accessors -------------------------------------------------
    def counter(self, name: str, **labels: object) -> int:
        return self.counters.get(metric_key(name, labels), 0)

    def counter_total(self, name: str) -> int:
        """Sum of a counter over every label combination."""
        return sum(value for (key_name, _), value in self.counters.items()
                   if key_name == name)

    def is_empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms)

    # -- serialisation ---------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "counters": {render_key(k): v for k, v in sorted(self.counters.items())},
            "gauges": {render_key(k): v for k, v in sorted(self.gauges.items())},
            "histograms": {
                render_key(k): {
                    "bounds": list(h.bounds), "counts": list(h.counts),
                    "count": h.count, "total": h.total,
                    "min": h.minimum, "max": h.maximum,
                }
                for k, h in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> MetricsSnapshot:
        return cls(
            counters={parse_key(k): v for k, v in data.get("counters", {}).items()},
            gauges={parse_key(k): v for k, v in data.get("gauges", {}).items()},
            histograms={
                parse_key(k): HistogramSnapshot(
                    bounds=tuple(h["bounds"]), counts=tuple(h["counts"]),
                    count=h["count"], total=h["total"],
                    minimum=h["min"], maximum=h["max"])
                for k, h in data.get("histograms", {}).items()
            },
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    def formatted(self) -> list[str]:
        """One sorted ``key value`` line per instrument, for reports."""
        lines = [f"{render_key(k)} {v}" for k, v in sorted(self.counters.items())]
        lines += [f"{render_key(k)} {v}" for k, v in sorted(self.gauges.items())]
        lines += [f"{render_key(k)} count={h.count} total={h.total}"
                  for k, h in sorted(self.histograms.items())]
        return lines


MetricsSnapshot.EMPTY = MetricsSnapshot()


def parse_key(rendered: str) -> MetricKey:
    """Inverse of :func:`render_key`."""
    if "{" not in rendered:
        return (rendered, ())
    name, _, rest = rendered.partition("{")
    body = rest.rstrip("}")
    labels = tuple(tuple(pair.split("=", 1)) for pair in body.split(",") if pair)
    return (name, labels)  # type: ignore[return-value]


class MetricsRegistry:
    """Hands out labeled instruments; disabled registries hand out nulls.

    Instruments are created on first use and identical ``(name, labels)``
    requests return the same object, so hot paths may cache the instrument
    once instead of re-resolving the key per increment.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[MetricKey, Counter] = {}
        self._gauges: dict[MetricKey, Gauge] = {}
        self._histograms: dict[MetricKey, Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS,
                  **labels: object) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(bounds)
        return instrument

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state (the registry keeps counting after)."""
        return MetricsSnapshot(
            counters={key: c.value for key, c in self._counters.items() if c.value},
            gauges={key: g.value for key, g in self._gauges.items()},
            histograms={
                key: HistogramSnapshot(
                    bounds=h.bounds, counts=tuple(h.counts), count=h.count,
                    total=h.total, minimum=h.minimum, maximum=h.maximum)
                for key, h in self._histograms.items() if h.count
            },
        )

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
