"""Reconstruct per-query poisoning-race timelines from a trace.

The paper's §IV mechanics are a race: the attacker's burst (spoofed
fragments, hijacked answers, SYN floods) against the legitimate response,
refereed by the resolver's defense stack.  The raw trace records each leg
as it happens; this module folds the ``dns.*`` / ``attack.*`` events back
into one :class:`QueryRace` per upstream query — a readable artifact
showing, in simulated-time order, when the attacker burst landed, when
each candidate response arrived, which defense rejected what (and why),
and which side ultimately won the cache.

Event vocabulary consumed (all emitted by the instrumented stack):

========================  ====================================================
``dns.query.sent``        resolver forwarded a query upstream
``dns.response.*``        candidate / rejected / accepted / truncated /
                          unmatched upstream responses
``dns.query.timeout``     the query expired unanswered
``dns.cache.write``       accepted answers entered the cache
``attack.*``              attacker activity (frag bursts, SYN floods,
                          hijacked answers) — attached to every query race
                          it temporally overlaps
========================  ====================================================
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from .trace import TraceEvent, ordered

#: How long before a query's send time an attack event is still considered
#: part of its race (spoofed fragments are planted *ahead* of the query).
ATTACK_LOOKBACK_SECONDS = 120.0


@dataclass(frozen=True)
class TimelineEntry:
    """One step of a race, in simulated time."""

    ts: float
    kind: str
    detail: dict

    def formatted(self) -> str:
        detail = ", ".join(f"{key}={value}" for key, value in self.detail.items()
                           if key not in ("qname", "txid"))
        return f"  t={self.ts:>10.4f}s  {self.kind:<24} {detail}"


@dataclass
class QueryRace:
    """The reconstructed poisoning race of one upstream query."""

    qname: str
    txid: int
    sent_at: float
    entries: list[TimelineEntry] = field(default_factory=list)

    # -- outcome ---------------------------------------------------------------
    @property
    def accepted(self) -> Optional[TimelineEntry]:
        """The accepted-response entry, if the query was answered."""
        for entry in self.entries:
            if entry.kind == "response accepted":
                return entry
        return None

    @property
    def winner(self) -> Optional[str]:
        """``"attacker"`` / ``"legitimate"`` / ``None`` (unanswered)."""
        accepted = self.accepted
        if accepted is None:
            return None
        return "attacker" if accepted.detail.get("poisoned") else "legitimate"

    @property
    def rejections(self) -> list[TimelineEntry]:
        """Defense verdicts that rejected a candidate, in time order."""
        return [entry for entry in self.entries if entry.kind == "response rejected"]

    @property
    def deciding_verdict(self) -> Optional[TimelineEntry]:
        """The defense verdict that decided the race.

        When the attacker's candidate was rejected, that rejection is the
        verdict that saved the cache; when the attacker won, it is the
        acceptance itself.
        """
        poisoned_rejections = [entry for entry in self.rejections
                               if entry.detail.get("poisoned")
                               or entry.detail.get("spoofed")]
        if poisoned_rejections:
            return poisoned_rejections[0]
        return self.accepted

    @property
    def attack_entries(self) -> list[TimelineEntry]:
        return [entry for entry in self.entries if entry.kind.startswith("attack")]

    # -- rendering -------------------------------------------------------------
    def formatted(self) -> list[str]:
        winner = self.winner or "unanswered"
        lines = [f"race: {self.qname} txid={self.txid} "
                 f"sent at t={self.sent_at:.4f}s — winner: {winner}"]
        lines.extend(entry.formatted() for entry in self.entries)
        verdict = self.deciding_verdict
        if verdict is not None and verdict.kind == "response rejected":
            lines.append(f"  decided by: {verdict.detail.get('defense')} "
                         f"({verdict.detail.get('reason')})")
        return lines


_DNS_KINDS = {
    "dns.response.candidate": "response candidate",
    "dns.response.rejected": "response rejected",
    "dns.response.accepted": "response accepted",
    "dns.response.truncated": "response truncated",
    "dns.query.timeout": "query timeout",
    "dns.cache.write": "cache write",
}

_ATTACK_KINDS = {
    "attack.frag_burst": "attack: fragment burst",
    "attack.syn_flood": "attack: SYN flood",
    "attack.hijack_answer": "attack: hijacked answer",
    "attack.spoof_burst": "attack: spoofed responses",
    "attack.bgp_hijack": "attack: BGP hijack",
}


def build_race_timelines(events: Sequence[TraceEvent]) -> list[QueryRace]:
    """Fold trace events into one :class:`QueryRace` per upstream query.

    Races are keyed by ``(txid, qname)`` — the same key the resolver uses
    for its pending-query table — and returned in query-send order.
    Attack events carry no query key; each is attached to every race it
    temporally overlaps (from :data:`ATTACK_LOOKBACK_SECONDS` before the
    send to the race's last DNS event), which is the attacker's actual
    relationship to the race: fragments are planted before the query they
    poison.
    """
    races: list[QueryRace] = []
    open_races: dict[tuple[int, str], QueryRace] = {}
    attack_events: list[TraceEvent] = []
    for event in ordered(events):
        if event.name == "dns.query.sent":
            race = QueryRace(qname=str(event.arg("qname")),
                             txid=int(event.arg("txid", 0)),  # type: ignore[arg-type]
                             sent_at=event.ts)
            race.entries.append(TimelineEntry(event.ts, "query sent", event.args_dict))
            open_races[(race.txid, race.qname)] = race
            races.append(race)
        elif event.name in _DNS_KINDS:
            key = (int(event.arg("txid", 0)), str(event.arg("qname")))  # type: ignore[arg-type]
            race = open_races.get(key)
            if race is not None:
                race.entries.append(TimelineEntry(
                    event.ts, _DNS_KINDS[event.name], event.args_dict))
        elif event.name in _ATTACK_KINDS:
            attack_events.append(event)

    for event in attack_events:
        kind = _ATTACK_KINDS[event.name]
        for race in races:
            last_ts = race.entries[-1].ts if race.entries else race.sent_at
            if race.sent_at - ATTACK_LOOKBACK_SECONDS <= event.ts <= last_ts:
                race.entries.append(TimelineEntry(event.ts, kind, event.args_dict))

    for race in races:
        race.entries.sort(key=lambda entry: entry.ts)
    return races


def poisoning_races(events: Sequence[TraceEvent]) -> list[QueryRace]:
    """Only the races an attacker actually contested."""
    return [race for race in build_race_timelines(events)
            if race.attack_entries or race.winner == "attacker"
            or any(entry.detail.get("poisoned") for entry in race.entries)]


def format_races(events: Sequence[TraceEvent], contested_only: bool = True) -> str:
    """A printable report of every (contested) race in a trace."""
    races = poisoning_races(events) if contested_only else build_race_timelines(events)
    if not races:
        return "no races recorded"
    blocks = ["\n".join(race.formatted()) for race in races]
    return "\n\n".join(blocks)
