"""The simulated network: hosts, links and packet delivery.

Hosts register with a :class:`Network` under one or more IPv4 addresses and
exchange UDP datagrams.  Delivery goes through three stages that mirror what
the attacks care about:

1. *Routing* — normally straight to the host owning the destination address,
   but a :class:`repro.netsim.bgp.RoutingTable` can divert a prefix to a
   hijacker.
2. *Fragmentation* — the sending host's path MTU (per destination, or a
   default) decides whether the datagram is split; the receiving host's
   :class:`repro.netsim.fragmentation.ReassemblyBuffer` reassembles, which is
   where spoofed fragments get glued in.
3. *Delivery* — after a configurable latency (plus jitter drawn from the
   simulator's RNG), the destination host's ``handle_datagram`` runs.

Off-path attackers cannot observe traffic (the network never copies packets
to them) but can inject raw IP packets with arbitrary source addresses via
:meth:`Network.inject`, which is all the fragmentation-poisoning attack
needs.  On-path attackers are modelled with taps.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .bgp import RoutingTable
from .fragmentation import OverlapPolicy, ReassemblyBuffer, fragment_datagram
from .packets import DEFAULT_MTU, PROTO_TCP, IPPacket, UDPDatagram
from .simulator import Simulator

if TYPE_CHECKING:  # imported lazily at runtime; see Host.tcp
    from .transport import TCPStack


class NetworkError(RuntimeError):
    """Raised for misconfiguration of the simulated network."""


@dataclass
class LinkProperties:
    """Per-destination link behaviour."""

    latency: float = 0.02
    jitter: float = 0.0
    loss_rate: float = 0.0
    mtu: int = DEFAULT_MTU


#: A tap sees (packet, simulated-time) for every packet traversing the network.
Tap = Callable[[IPPacket, float], None]


class Host:
    """Base class for every simulated endpoint (resolvers, servers, clients).

    Subclasses override :meth:`handle_datagram`.  Each host owns a
    defragmentation cache; its overlap policy is an experiment knob because
    the fragmentation-poisoning vector depends on it.
    """

    def __init__(self, network: Network, address: str, name: Optional[str] = None,
                 overlap_policy: OverlapPolicy = OverlapPolicy.FIRST_WINS) -> None:
        self.network = network
        self.address = address
        self.name = name or f"host-{address}"
        self.reassembly = ReassemblyBuffer(overlap_policy=overlap_policy)
        self.received_datagrams = 0
        self.poisoned_datagrams = 0
        #: Whether the datagram currently being handled was assembled from a
        #: spoofed fragment; application layers (the DNS resolver) consult it
        #: to tag cache entries for experiment reporting.
        self.last_datagram_poisoned = False
        #: Lazily-created TCP endpoint table (see :attr:`tcp`); ``None`` for
        #: the (overwhelmingly common) datagram-only hosts.
        self._tcp: Optional["TCPStack"] = None
        network.register(self)

    @property
    def tcp(self) -> TCPStack:
        """This host's TCP endpoint table, created on first use.

        Datagram-only hosts never pay for it; hosts that listen or connect
        (encrypted-transport nameservers and resolvers) share one stack for
        all their connections.
        """
        if self._tcp is None:
            from .transport import TCPStack

            self._tcp = TCPStack(self)
        return self._tcp

    # -- sending -----------------------------------------------------------
    def send_datagram(self, datagram: UDPDatagram) -> None:
        """Send a UDP datagram into the network from this host."""
        self.network.send_datagram(datagram)

    # -- receiving ---------------------------------------------------------
    def deliver_packet(self, packet: IPPacket) -> None:
        """Called by the network for every IP packet addressed to this host."""
        if packet.protocol == PROTO_TCP:
            # Stream transports bypass the defragmentation path entirely:
            # segments are MSS-sized and never fragment.  Hosts with no TCP
            # stack drop segments silently (no RST — see netsim.transport).
            if self._tcp is not None:
                self._tcp.handle_packet(packet)
            return
        obs = self.network.simulator.obs
        result = self.reassembly.add_fragment(packet, self.network.simulator.now)
        if result.datagram is None:
            return
        if not result.datagram.checksum_valid() and not result.checksum_compensated:
            # A reassembled datagram whose UDP checksum no longer matches is
            # silently dropped — the failure mode of a sloppy fragment spoof
            # that did not compensate the checksum.
            if obs.enabled:
                obs.metrics.counter("net.datagrams_dropped", reason="checksum").inc()
                obs.trace.instant("net.drop", category="net", reason="checksum",
                                  src=packet.src_ip, dst=packet.dst_ip)
            return
        self.received_datagrams += 1
        if result.poisoned:
            self.poisoned_datagrams += 1
        if obs.enabled:
            obs.metrics.counter("net.datagrams_delivered",
                                poisoned=result.poisoned).inc()
            if result.poisoned:
                obs.trace.instant("net.poisoned_delivery", category="net",
                                  dst=self.address, src=packet.src_ip)
        self.last_datagram_poisoned = result.poisoned
        try:
            self.handle_datagram(result.datagram)
        finally:
            self.last_datagram_poisoned = False

    def handle_datagram(self, datagram: UDPDatagram) -> None:  # pragma: no cover - abstract
        """Application-layer handler; overridden by DNS/NTP hosts."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} @ {self.address}>"


class Network:
    """Connects hosts and delivers packets under the simulator's clock."""

    def __init__(self, simulator: Simulator, default_link: Optional[LinkProperties] = None,
                 routing_table: Optional[RoutingTable] = None) -> None:
        self.simulator = simulator
        #: Observability snapshot; packet delivery is a hot path, so the
        #: facade is cached here rather than re-read through the simulator.
        self._obs = simulator.obs
        self.default_link = default_link or LinkProperties()
        self.routing_table = routing_table or RoutingTable()
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], LinkProperties] = {}
        self._path_mtu: dict[str, int] = {}
        self._taps: list[Tap] = []
        self._next_ip_id: dict[str, int] = {}
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_injected = 0
        self.packets_duplicated = 0
        #: Optional :class:`~repro.faults.injector.FaultInjector`, attached
        #: by its ``arm()``.  ``None`` (the default) keeps the transmit path
        #: at a single attribute check.
        self.faults = None

    # -- topology ----------------------------------------------------------
    def register(self, host: Host) -> None:
        """Register a host under its address (called by ``Host.__init__``)."""
        if host.address in self._hosts:
            raise NetworkError(f"address {host.address} already registered")
        self._hosts[host.address] = host

    def host_for(self, address: str) -> Optional[Host]:
        """The host owning ``address``, honouring any BGP hijack in effect."""
        diverted = self.routing_table.lookup(address)
        if diverted is not None and diverted in self._hosts:
            return self._hosts[diverted]
        return self._hosts.get(address)

    def set_link(self, src: str, dst: str, properties: LinkProperties) -> None:
        """Configure link behaviour for the (src, dst) direction."""
        self._links[(src, dst)] = properties

    def set_path_mtu(self, src: str, mtu: int) -> None:
        """Set the path MTU used for datagrams originating at ``src``.

        The paper's measurement found pool.ntp.org nameservers willing to
        fragment responses down to 548 bytes; experiments set this per
        nameserver to reproduce that.
        """
        self._path_mtu[src] = mtu

    def add_tap(self, tap: Tap) -> None:
        """Attach an on-path observer (MitM models, trace recording)."""
        self._taps.append(tap)

    def link_for(self, src: str, dst: str) -> LinkProperties:
        return self._links.get((src, dst), self.default_link)

    def effective_mtu(self, src: str, dst: str) -> int:
        """The MTU governing ``src``'s packets towards ``dst``: the smaller
        of the per-source path MTU and the (src, dst) link MTU."""
        return min(self._path_mtu.get(src, DEFAULT_MTU), self.link_for(src, dst).mtu)

    # -- sending -----------------------------------------------------------
    def next_ip_id(self, src: str) -> int:
        """Sequential per-source IP-ID counter.

        Many real stacks use globally or per-destination sequential IP-IDs,
        which is precisely what makes them predictable to an off-path
        attacker; the fragmentation attack exploits this predictability.
        """
        value = self._next_ip_id.get(src, 1)
        self._next_ip_id[src] = (value + 1) & 0xFFFF or 1
        return value

    def send_datagram(self, datagram: UDPDatagram) -> None:
        """Fragment (if needed) and deliver a UDP datagram."""
        datagram = datagram.with_valid_checksum()
        mtu = self.effective_mtu(datagram.src_ip, datagram.dst_ip)
        ip_id = self.next_ip_id(datagram.src_ip)
        fragments = fragment_datagram(datagram, ip_id=ip_id, mtu=mtu)
        if len(fragments) > 1 and self._obs.enabled:
            self._obs.metrics.counter("net.datagrams_fragmented").inc()
            self._obs.trace.instant("net.fragment", category="net",
                                    src=datagram.src_ip, dst=datagram.dst_ip,
                                    fragments=len(fragments), ip_id=ip_id)
        for packet in fragments:
            self._transmit(packet)

    def send_packet(self, packet: IPPacket) -> None:
        """Send a fully-formed, non-UDP IP packet (TCP segments) from a host.

        No fragmentation is applied: stream transports size their segments
        to the effective MTU (see ``TCPStack.mss_for``), so a segment never
        needs to fragment — which is itself part of why encrypted transports
        kill the defragmentation-splice vector.
        """
        self._transmit(packet)

    def inject(self, packet: IPPacket) -> None:
        """Inject a raw IP packet with an arbitrary (spoofed) source address.

        This is the off-path attacker's only capability: no observation, just
        blind injection.
        """
        self.packets_injected += 1
        if self._obs.enabled:
            self._obs.metrics.counter("net.packets_injected",
                                      spoofed=packet.spoofed).inc()
        self._transmit(packet)

    def _transmit(self, packet: IPPacket) -> None:
        self.packets_sent += 1
        obs = self._obs
        if obs.enabled:
            obs.metrics.counter("net.packets_sent").inc()
            if self._taps:
                obs.metrics.counter("net.tap_observations").inc(len(self._taps))
        for tap in self._taps:
            tap(packet, self.simulator.now)
        extra_latency = 0.0
        duplicate_delay = None
        faults = self.faults
        if faults is not None:
            fault_reason, extra_latency, duplicate_delay = faults.on_transmit(packet)
            if fault_reason is not None:
                self.packets_dropped += 1
                if obs.enabled:
                    obs.metrics.counter("net.packets_dropped",
                                        reason=fault_reason).inc()
                    obs.trace.instant("net.drop", category="net",
                                      reason=fault_reason,
                                      src=packet.src_ip, dst=packet.dst_ip)
                return
        link = self.link_for(packet.src_ip, packet.dst_ip)
        if link.loss_rate > 0 and self.simulator.rng.random() < link.loss_rate:
            self.packets_dropped += 1
            if obs.enabled:
                obs.metrics.counter("net.packets_dropped", reason="loss").inc()
                obs.trace.instant("net.drop", category="net", reason="loss",
                                  src=packet.src_ip, dst=packet.dst_ip)
            return
        destination = self.host_for(packet.dst_ip)
        if destination is None:
            self.packets_dropped += 1
            if obs.enabled:
                obs.metrics.counter("net.packets_dropped", reason="no-host").inc()
                obs.trace.instant("net.drop", category="net", reason="no-host",
                                  src=packet.src_ip, dst=packet.dst_ip)
            return
        latency = link.latency + extra_latency
        if link.jitter > 0:
            latency += self.simulator.rng.uniform(0, link.jitter)
        self.simulator.schedule(latency, lambda p=packet, d=destination: d.deliver_packet(p))
        if duplicate_delay is not None:
            self.packets_duplicated += 1
            if obs.enabled:
                obs.metrics.counter("net.packets_duplicated").inc()
                obs.trace.instant("net.duplicate", category="net",
                                  src=packet.src_ip, dst=packet.dst_ip)
            self.simulator.schedule(latency + duplicate_delay,
                                    lambda p=packet, d=destination: d.deliver_packet(p))
