"""IPv4 address and prefix utilities for the network simulation.

The simulation deals in plain dotted-quad strings at the API surface (that is
what DNS A records carry) but internally needs integer arithmetic for prefix
matching (BGP hijack modelling) and for allocating large, disjoint blocks of
benign and attacker NTP-server addresses.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass


class AddressError(ValueError):
    """Raised for malformed IPv4 addresses or prefixes."""


def ip_to_int(address: str) -> int:
    """Convert a dotted-quad IPv4 address to its 32-bit integer value."""
    parts = address.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit():
            raise AddressError(f"malformed IPv4 address: {address!r}")
        octet = int(part)
        if octet > 255:
            raise AddressError(f"octet out of range in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad IPv4 address."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise AddressError(f"value out of IPv4 range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_valid_ip(address: str) -> bool:
    """Return ``True`` when ``address`` parses as a dotted-quad IPv4 address."""
    try:
        ip_to_int(address)
    except AddressError:
        return False
    return True


@dataclass(frozen=True)
class Prefix:
    """An IPv4 prefix such as ``203.0.113.0/24``.

    Used by the BGP model: routes are prefixes, and a hijacker wins traffic
    by announcing a longer (more specific) prefix covering the victim.
    """

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise AddressError(f"prefix length out of range: {self.length}")
        mask = self.mask
        if self.network & ~mask & 0xFFFFFFFF:
            # Normalise: zero the host bits rather than erroring, matching
            # how routers treat sloppy configuration.
            object.__setattr__(self, "network", self.network & mask)

    @classmethod
    def parse(cls, text: str) -> Prefix:
        """Parse ``"a.b.c.d/len"`` (or a bare address, meaning a /32)."""
        if "/" in text:
            address, _, length_text = text.partition("/")
            if not length_text.isdigit():
                raise AddressError(f"malformed prefix: {text!r}")
            length = int(length_text)
        else:
            address, length = text, 32
        return cls(ip_to_int(address), length)

    @property
    def mask(self) -> int:
        """The 32-bit netmask for this prefix length."""
        if self.length == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.length)) & 0xFFFFFFFF

    def contains(self, address: str) -> bool:
        """Whether ``address`` falls inside this prefix."""
        return (ip_to_int(address) & self.mask) == self.network

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"


class AddressAllocator:
    """Hands out sequential addresses from a base prefix.

    Experiments need blocks of addresses for the benign pool.ntp.org zone
    (hundreds of servers) and for the attacker's malicious NTP servers
    (up to 89 in a single DNS response).  Keeping the blocks disjoint and
    deterministic makes attack traces readable.
    """

    def __init__(self, base: str) -> None:
        self._prefix = Prefix.parse(base)
        self._next = self._prefix.network + 1  # skip the network address
        self._limit = self._prefix.network + (1 << (32 - self._prefix.length)) - 1

    def allocate(self) -> str:
        """Allocate the next unused address in the block."""
        if self._next >= self._limit:
            raise AddressError(f"address block {self._prefix} exhausted")
        address = int_to_ip(self._next)
        self._next += 1
        return address

    def allocate_many(self, count: int) -> list[str]:
        """Allocate ``count`` consecutive addresses."""
        return [self.allocate() for _ in range(count)]

    def __iter__(self) -> Iterator[str]:
        while True:
            yield self.allocate()
