"""A deliberately small BGP model: longest-prefix-match routing and hijacks.

The paper lists two vectors for the DNS cache poisoning that seeds the
Chronos pool attack: IPv4 defragmentation poisoning and BGP prefix hijacking
("BGP hijacking places the attacker in a MitM position for the victim
network").  For the reproduction we only need the *consequence* of a hijack —
packets addressed to the victim prefix are delivered to the hijacker instead
of (or before) the legitimate owner — not BGP's path-vector mechanics.

The routing table maps prefixes to the simulated host that currently receives
traffic for them.  Announcing a more-specific prefix wins by longest-prefix
match, exactly the property real-world hijacks (e.g. the MyEtherWallet /
Amazon Route 53 incident cited by the paper) exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .addresses import Prefix


@dataclass(frozen=True)
class RouteAnnouncement:
    """One announcement: a prefix claimed by an origin (host address)."""

    prefix: Prefix
    origin: str
    legitimate: bool = True


@dataclass
class RoutingTable:
    """Longest-prefix-match forwarding state shared by the simulated network."""

    announcements: list[RouteAnnouncement] = field(default_factory=list)
    #: history of hijacks, useful for experiment reporting
    hijacks: list[RouteAnnouncement] = field(default_factory=list)

    def announce(self, prefix: str, origin: str, legitimate: bool = True) -> RouteAnnouncement:
        """Add an announcement.  Illegitimate announcements are recorded as hijacks."""
        announcement = RouteAnnouncement(Prefix.parse(prefix), origin, legitimate)
        self.announcements.append(announcement)
        if not legitimate:
            self.hijacks.append(announcement)
        return announcement

    def withdraw(self, prefix: str, origin: str) -> None:
        """Remove announcements of ``prefix`` by ``origin`` (no-op if absent)."""
        target = Prefix.parse(prefix)
        self.announcements = [
            a for a in self.announcements if not (a.prefix == target and a.origin == origin)
        ]

    def lookup(self, address: str) -> Optional[str]:
        """Return the origin that currently receives traffic for ``address``.

        Longest prefix wins; on a tie the most recent announcement wins,
        modelling the propagation advantage a fresh (hijack) announcement has
        over an established route in the neighbourhood that accepted it.
        """
        best: Optional[RouteAnnouncement] = None
        best_index = -1
        for index, announcement in enumerate(self.announcements):
            if not announcement.prefix.contains(address):
                continue
            if best is None or announcement.prefix.length > best.prefix.length or (
                announcement.prefix.length == best.prefix.length and index > best_index
            ):
                best = announcement
                best_index = index
        return best.origin if best else None

    def hijacked_destinations(self) -> dict[str, str]:
        """Map of hijacked prefixes (as strings) to the hijacker origin."""
        return {str(a.prefix): a.origin for a in self.hijacks}


class BGPHijack:
    """Context-manager helper for a temporary prefix hijack.

    Example
    -------
    >>> table = RoutingTable()
    >>> table.announce("203.0.113.0/24", "203.0.113.53")
    ... # doctest: +ELLIPSIS
    RouteAnnouncement(...)
    >>> with BGPHijack(table, "203.0.113.0/25", hijacker="198.51.100.66"):
    ...     table.lookup("203.0.113.53")
    '198.51.100.66'
    >>> table.lookup("203.0.113.53")
    '203.0.113.53'
    """

    def __init__(self, table: RoutingTable, prefix: str, hijacker: str) -> None:
        self.table = table
        self.prefix = prefix
        self.hijacker = hijacker

    def __enter__(self) -> BGPHijack:
        self.table.announce(self.prefix, self.hijacker, legitimate=False)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.table.withdraw(self.prefix, self.hijacker)
