"""IPv4 fragmentation and reassembly, including the defragmentation cache.

This module is the substrate for the fragmentation-based DNS cache-poisoning
vector the paper builds on (Herzberg & Shulman, "Fragmentation Considered
Poisonous", CNS 2013).  The attack works because IPv4 reassembly groups
fragments only by (src, dst, protocol, IP-ID): an off-path attacker who can
predict the nameserver's IP-ID can plant a spoofed *second* fragment in the
victim resolver's reassembly buffer ahead of time; when the genuine first
fragment arrives it is reassembled with the attacker's tail, replacing the
benign DNS answer records with attacker-controlled ones.

Two reassembly overlap policies are provided because the predecessor attack
on NTP itself ([1] in the paper) depended on a *specific* overlap-resolution
behaviour not present in modern operating systems — one of the reasons the
paper argues the DNS route is more practical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from .packets import IPV4_HEADER_SIZE, UDP_HEADER_SIZE, IPPacket, PacketError, UDPDatagram


class OverlapPolicy(enum.Enum):
    """How a reassembler resolves overlapping fragment data.

    ``FIRST_WINS``
        Data already present in the buffer is kept (BSD-style).  This is the
        policy that makes "plant the spoofed fragment first" effective.
    ``LAST_WINS``
        Later fragments overwrite earlier data (old Linux behaviour).
    ``DROP``
        Any overlap discards the whole reassembly (modern hardened stacks).
    """

    FIRST_WINS = "first-wins"
    LAST_WINS = "last-wins"
    DROP = "drop"


def fragment_datagram(datagram: UDPDatagram, ip_id: int, mtu: int) -> list[IPPacket]:
    """Fragment a UDP datagram into IPv4 packets that fit within ``mtu``.

    The UDP header occupies the first 8 bytes of the IP payload; fragments
    after the first contain raw payload bytes only, exactly as on the wire.
    Fragment payload sizes are multiples of 8 bytes (except the last), per
    RFC 791.

    Returns a single non-fragmented packet when the datagram fits in ``mtu``.
    """
    if mtu < IPV4_HEADER_SIZE + 8:
        raise PacketError(f"MTU {mtu} too small to carry any IPv4 payload")
    udp_bytes_length = UDP_HEADER_SIZE + len(datagram.payload)
    max_ip_payload = mtu - IPV4_HEADER_SIZE
    if udp_bytes_length <= max_ip_payload:
        return [
            IPPacket(
                src_ip=datagram.src_ip,
                dst_ip=datagram.dst_ip,
                ip_id=ip_id,
                payload=_udp_wire_bytes(datagram),
                fragment_offset=0,
                more_fragments=False,
            )
        ]

    # Per-fragment payload must be a multiple of 8 bytes.
    per_fragment = (max_ip_payload // 8) * 8
    wire = _udp_wire_bytes(datagram)
    fragments: list[IPPacket] = []
    offset = 0
    while offset < len(wire):
        chunk = wire[offset:offset + per_fragment]
        more = offset + len(chunk) < len(wire)
        fragments.append(
            IPPacket(
                src_ip=datagram.src_ip,
                dst_ip=datagram.dst_ip,
                ip_id=ip_id,
                payload=chunk,
                fragment_offset=offset,
                more_fragments=more,
            )
        )
        offset += len(chunk)
    return fragments


def _udp_wire_bytes(datagram: UDPDatagram) -> bytes:
    """Serialise the UDP header + payload (checksum carried separately).

    The simulation keeps the checksum as structured metadata rather than
    packing it into these bytes; :func:`reassemble_udp` reconstructs a
    :class:`UDPDatagram` carrying the original checksum so validation still
    reflects whether the *payload bytes* were tampered with.
    """
    header = (
        datagram.src_port.to_bytes(2, "big")
        + datagram.dst_port.to_bytes(2, "big")
        + (UDP_HEADER_SIZE + len(datagram.payload)).to_bytes(2, "big")
        + (datagram.checksum or 0).to_bytes(2, "big")
    )
    return header + datagram.payload


def parse_udp_wire(src_ip: str, dst_ip: str, wire: bytes) -> UDPDatagram:
    """Parse reassembled UDP wire bytes back into a :class:`UDPDatagram`."""
    if len(wire) < UDP_HEADER_SIZE:
        raise PacketError("truncated UDP datagram")
    src_port = int.from_bytes(wire[0:2], "big")
    dst_port = int.from_bytes(wire[2:4], "big")
    length = int.from_bytes(wire[4:6], "big")
    checksum = int.from_bytes(wire[6:8], "big")
    payload = wire[UDP_HEADER_SIZE:length] if length >= UDP_HEADER_SIZE else b""
    return UDPDatagram(
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        payload=payload,
        checksum=checksum or None,
    )


@dataclass
class _ReassemblyEntry:
    """State for one in-progress reassembly (one IP-ID)."""

    chunks: dict[int, bytes] = field(default_factory=dict)
    total_length: Optional[int] = None
    created_at: float = 0.0
    poisoned: bool = False
    checksum_compensated: bool = False
    dropped: bool = False


@dataclass
class ReassemblyResult:
    """Outcome of offering a fragment to the buffer."""

    datagram: Optional[UDPDatagram]
    poisoned: bool = False
    #: True when a spoofed fragment in the reassembly claimed to have fixed
    #: the UDP checksum (see :class:`repro.netsim.packets.IPPacket`).
    checksum_compensated: bool = False


class ReassemblyBuffer:
    """A per-host IPv4 defragmentation cache.

    Fragments are grouped by :attr:`IPPacket.reassembly_key`.  Entries time
    out after ``timeout`` simulated seconds (default 30 s, a common value);
    the poisoning attack relies on the spoofed fragment surviving in this
    cache until the genuine first fragment arrives.
    """

    def __init__(self, overlap_policy: OverlapPolicy = OverlapPolicy.FIRST_WINS,
                 timeout: float = 30.0, capacity: int = 1024) -> None:
        self.overlap_policy = overlap_policy
        self.timeout = timeout
        self.capacity = capacity
        self._entries: dict[tuple, _ReassemblyEntry] = {}
        self.completed = 0
        self.expired = 0
        self.overlaps_seen = 0

    def __len__(self) -> int:
        return len(self._entries)

    def expire(self, now: float) -> None:
        """Drop reassembly state older than :attr:`timeout`."""
        stale = [key for key, entry in self._entries.items() if now - entry.created_at > self.timeout]
        for key in stale:
            del self._entries[key]
            self.expired += 1

    def add_fragment(self, fragment: IPPacket, now: float) -> ReassemblyResult:
        """Offer a fragment; returns a completed datagram when reassembly finishes.

        Non-fragment packets pass straight through.
        """
        if not fragment.is_fragment:
            datagram = parse_udp_wire(fragment.src_ip, fragment.dst_ip, fragment.payload)
            return ReassemblyResult(datagram=datagram, poisoned=fragment.spoofed)

        self.expire(now)
        key = fragment.reassembly_key
        entry = self._entries.get(key)
        if entry is None:
            if len(self._entries) >= self.capacity:
                # Evict the oldest entry; a busy resolver behaves this way and
                # it bounds the attacker's window rather than extending it.
                oldest = min(self._entries, key=lambda k: self._entries[k].created_at)
                del self._entries[oldest]
            entry = _ReassemblyEntry(created_at=now)
            self._entries[key] = entry
        if entry.dropped:
            return ReassemblyResult(datagram=None)

        overlap = self._store_chunk(entry, fragment)
        if overlap and self.overlap_policy is OverlapPolicy.DROP:
            entry.dropped = True
            entry.chunks.clear()
            return ReassemblyResult(datagram=None)
        if fragment.spoofed:
            entry.poisoned = True
        if fragment.checksum_compensated:
            entry.checksum_compensated = True
        if not fragment.more_fragments:
            end = fragment.fragment_offset + len(fragment.payload)
            if entry.total_length is None or end > entry.total_length:
                entry.total_length = end

        datagram = self._try_complete(key, entry)
        if datagram is None:
            return ReassemblyResult(datagram=None)
        return ReassemblyResult(datagram=datagram, poisoned=entry.poisoned,
                                checksum_compensated=entry.checksum_compensated)

    def _store_chunk(self, entry: _ReassemblyEntry, fragment: IPPacket) -> bool:
        """Store a fragment's bytes, resolving overlaps per policy.

        Returns ``True`` when the fragment overlapped existing data.
        """
        offset = fragment.fragment_offset
        overlap = False
        for existing_offset, existing in entry.chunks.items():
            if offset < existing_offset + len(existing) and existing_offset < offset + len(fragment.payload):
                overlap = True
                self.overlaps_seen += 1
                break
        if overlap and self.overlap_policy is OverlapPolicy.FIRST_WINS:
            # Keep existing bytes; only store the non-overlapping tail/head.
            self._store_non_overlapping(entry, offset, fragment.payload)
            return True
        entry.chunks[offset] = fragment.payload
        return overlap

    def _store_non_overlapping(self, entry: _ReassemblyEntry, offset: int, payload: bytes) -> None:
        """Insert only the byte ranges not already covered (FIRST_WINS)."""
        covered = sorted((o, o + len(c)) for o, c in entry.chunks.items())
        position = offset
        end = offset + len(payload)
        for cov_start, cov_end in covered:
            if cov_end <= position:
                continue
            if cov_start >= end:
                break
            if cov_start > position:
                entry.chunks[position] = payload[position - offset:cov_start - offset]
            position = max(position, cov_end)
        if position < end:
            entry.chunks[position] = payload[position - offset:]

    def _try_complete(self, key: tuple, entry: _ReassemblyEntry) -> Optional[UDPDatagram]:
        """Return the reassembled datagram if the byte range is fully covered."""
        if entry.total_length is None:
            return None
        covered = sorted(entry.chunks.items())
        position = 0
        buffer = bytearray(entry.total_length)
        for offset, chunk in covered:
            if offset > position:
                return None  # hole
            usable = chunk[: max(0, entry.total_length - offset)]
            buffer[offset:offset + len(usable)] = usable
            position = max(position, offset + len(usable))
        if position < entry.total_length:
            return None
        src_ip, dst_ip, _, _ = key
        del self._entries[key]
        self.completed += 1
        return parse_udp_wire(src_ip, dst_ip, bytes(buffer))
