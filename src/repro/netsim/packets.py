"""IPv4 and UDP packet models.

Only the fields that matter for the reproduced attacks are modelled, but they
are modelled faithfully:

* the IPv4 identification field (``ip_id``) — the value an off-path attacker
  must predict to plant a matching spoofed fragment in a resolver's
  defragmentation cache;
* fragmentation metadata (fragment offset, more-fragments flag) — the basis
  of the Herzberg/Shulman poisoning technique the paper builds on;
* the UDP checksum — which covers the whole datagram and therefore must still
  validate after the attacker's fragment replaces part of the payload.

Payloads are ``bytes``; the DNS and NTP layers encode/decode real wire
formats, so sizes (and therefore "does this response fragment at MTU 1500 /
548 / 68?") are exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .addresses import ip_to_int

IPV4_HEADER_SIZE = 20
UDP_HEADER_SIZE = 8
#: Conventional Ethernet MTU; a DNS/UDP payload of up to 1472 bytes fits
#: unfragmented (1500 - 20 IPv4 - 8 UDP).
DEFAULT_MTU = 1500
#: The minimum MTU an IPv4 host must accept (RFC 791); the paper's resolver
#: study probes acceptance of fragments this small.
MINIMUM_IPV4_MTU = 68

PROTO_UDP = 17
PROTO_TCP = 6


class PacketError(ValueError):
    """Raised for malformed packet construction or invalid fragmentation."""


def udp_checksum(src_ip: str, dst_ip: str, src_port: int, dst_port: int, payload: bytes) -> int:
    """Compute a UDP checksum over the pseudo-header and payload.

    This is the real ones'-complement Internet checksum.  The attacks rely on
    it in a specific way: the checksum covers the *entire* reassembled UDP
    datagram, so an attacker replacing the second fragment must choose spoofed
    content whose contribution keeps the checksum valid (or know the original
    content well enough to compensate).  The fragmentation-poisoning attack
    code models both the "attacker compensates correctly" and "checksum
    mismatch, datagram dropped" outcomes using this function.
    """
    length = UDP_HEADER_SIZE + len(payload)
    data = (
        ip_to_int(src_ip).to_bytes(4, "big")
        + ip_to_int(dst_ip).to_bytes(4, "big")
        + bytes([0, PROTO_UDP])
        + length.to_bytes(2, "big")
        + src_port.to_bytes(2, "big")
        + dst_port.to_bytes(2, "big")
        + length.to_bytes(2, "big")
        + b"\x00\x00"
        + payload
    )
    if len(data) % 2:
        data += b"\x00"
    # The ones'-complement sum of the 16-bit words equals the whole buffer
    # read as one big-endian integer reduced mod 0xFFFF (2^16 ≡ 1 mod 65535),
    # which lets CPython do the summation in C instead of a per-word loop —
    # this function runs once per datagram on the simulated wire.
    total = int.from_bytes(data, "big") % 0xFFFF
    checksum = (~total) & 0xFFFF
    return checksum or 0xFFFF


@dataclass(frozen=True)
class UDPDatagram:
    """A UDP datagram as seen by application-layer code (DNS, NTP)."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    payload: bytes
    checksum: Optional[int] = None

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise PacketError(f"port out of range: {port}")

    @property
    def size(self) -> int:
        """Total UDP datagram size (header + payload) in bytes."""
        return UDP_HEADER_SIZE + len(self.payload)

    def with_valid_checksum(self) -> UDPDatagram:
        """Return a copy whose checksum field is correctly computed."""
        value = udp_checksum(self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.payload)
        return replace(self, checksum=value)

    def checksum_valid(self) -> bool:
        """Whether the stored checksum matches the payload.

        A datagram with no checksum recorded (``None``) is treated as valid,
        mirroring UDP's optional-checksum behaviour over IPv4.
        """
        if self.checksum is None:
            return True
        expected = udp_checksum(self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.payload)
        return expected == self.checksum


@dataclass(frozen=True)
class IPPacket:
    """An IPv4 packet (possibly a fragment) carrying part of a UDP datagram.

    ``fragment_offset`` is expressed in bytes (the wire format uses 8-byte
    units; :mod:`repro.netsim.fragmentation` enforces the 8-byte alignment
    rule when splitting).
    """

    src_ip: str
    dst_ip: str
    ip_id: int
    payload: bytes
    protocol: int = PROTO_UDP
    fragment_offset: int = 0
    more_fragments: bool = False
    ttl: int = 64
    spoofed: bool = field(default=False, compare=False)
    #: Set by an attacker that crafted this (spoofed) fragment so that the
    #: reassembled datagram's UDP checksum still validates despite the splice
    #: — the "checksum fixing" step of fragmentation poisoning.
    checksum_compensated: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not 0 <= self.ip_id <= 0xFFFF:
            raise PacketError(f"ip_id out of range: {self.ip_id}")
        if self.fragment_offset < 0:
            raise PacketError("negative fragment offset")
        if self.fragment_offset % 8 != 0:
            # Offsets are carried in 8-byte units on the wire.
            raise PacketError("fragment offset must be a multiple of 8 bytes")

    @property
    def total_size(self) -> int:
        """On-the-wire size of this packet (IPv4 header + payload)."""
        return IPV4_HEADER_SIZE + len(self.payload)

    @property
    def is_fragment(self) -> bool:
        """True when this packet is part of a fragmented datagram."""
        return self.more_fragments or self.fragment_offset > 0

    @property
    def reassembly_key(self) -> tuple:
        """The tuple IPv4 reassembly uses to group fragments.

        RFC 791 reassembles on (source, destination, protocol, identification)
        — crucially *not* on any transport-layer field, which is what lets an
        off-path attacker's spoofed fragment be glued onto a genuine first
        fragment from the nameserver.
        """
        return (self.src_ip, self.dst_ip, self.protocol, self.ip_id)

    def first_fragment(self) -> bool:
        return self.fragment_offset == 0
