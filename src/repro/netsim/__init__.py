"""Network simulation substrate: discrete-event simulator, IPv4/UDP, fragmentation, BGP."""

from .addresses import AddressAllocator, AddressError, Prefix, int_to_ip, ip_to_int, is_valid_ip
from .bgp import BGPHijack, RouteAnnouncement, RoutingTable
from .fragmentation import (
    OverlapPolicy,
    ReassemblyBuffer,
    ReassemblyResult,
    fragment_datagram,
    parse_udp_wire,
)
from .network import Host, LinkProperties, Network, NetworkError
from .packets import (
    DEFAULT_MTU,
    IPV4_HEADER_SIZE,
    MINIMUM_IPV4_MTU,
    UDP_HEADER_SIZE,
    IPPacket,
    PacketError,
    UDPDatagram,
    udp_checksum,
)
from .simulator import EventHandle, SimulationError, Simulator

__all__ = [
    "AddressAllocator",
    "AddressError",
    "Prefix",
    "int_to_ip",
    "ip_to_int",
    "is_valid_ip",
    "BGPHijack",
    "RouteAnnouncement",
    "RoutingTable",
    "OverlapPolicy",
    "ReassemblyBuffer",
    "ReassemblyResult",
    "fragment_datagram",
    "parse_udp_wire",
    "Host",
    "LinkProperties",
    "Network",
    "NetworkError",
    "DEFAULT_MTU",
    "IPV4_HEADER_SIZE",
    "MINIMUM_IPV4_MTU",
    "UDP_HEADER_SIZE",
    "IPPacket",
    "PacketError",
    "UDPDatagram",
    "udp_checksum",
    "EventHandle",
    "SimulationError",
    "Simulator",
]
