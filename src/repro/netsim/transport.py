"""Connection-oriented transports: a TCP model and a TLS-like secure channel.

Everything before this module was datagrams — which is exactly why the
paper's off-path attacks work: a single spoofed UDP response (or a spoofed
trailing fragment) is indistinguishable from the real one.  Encrypted DNS
transports (DoT/DoH) remove both vectors by moving resolution onto a
*connection*: an off-path attacker who cannot observe the 32-bit initial
sequence numbers cannot inject into the stream, and the TLS layer
authenticates the server and hides the payload even from on-path taps.

Three layers, each usable on its own:

* :class:`TCPStack` / :class:`Connection` — a TCP-like reliable byte stream
  over the existing :class:`~repro.netsim.packets.IPPacket` path: three-way
  handshake with RNG-drawn ISNs, MSS-sized segmentation (segments never
  IP-fragment), in-order reassembly, and rejection of out-of-window
  segments, which is what defeats blind injection.  Listeners keep a finite
  half-open backlog, so spoofed-source SYN floods — the one thing an
  off-path attacker *can* still do to a connection-oriented service — are
  faithfully modelled (the downgrade attack uses exactly this).
* :class:`PlainStreamSocket` — the app-facing byte-stream interface.
* :class:`SecureChannel` — a TLS 1.3-flavoured model on top: one extra
  round trip (ClientHello / ServerHello), an ephemeral Diffie-Hellman key
  exchange over a fixed 256-bit prime, a certificate whose *subject* is
  pinned to an expected identity (the DNS zone) and whose signature is a
  keyed digest in the style of :mod:`repro.defenses.hardening`'s response
  signing (the key is secret by convention — no attacker code reads it),
  and XOR-keystream record encryption, so application bytes on the wire are
  ciphertext: opaque to :data:`~repro.netsim.network.Tap` observers and to
  anything that diverts the packets.

Simplifications, stated up front: there is no retransmission (experiments
run stream transports over lossless links), no flow control, and closing is
a single FIN with immediate teardown.  Segments addressed to no matching
connection or listener are dropped silently rather than RST'd — real stacks
answer RST, but silent drop both denies off-path attackers a scan oracle
and models the BGP-hijack case, where diverted segments arrive at a host
that does not terminate TCP for the impersonated address.

Determinism: every random draw (ISNs, ephemeral ports, TLS randoms, DH
exponents) comes from the simulator-owned RNG, so connection-oriented runs
remain a pure function of the seed.
"""

from __future__ import annotations

import enum
import hashlib
from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .packets import IPV4_HEADER_SIZE, PROTO_TCP, IPPacket, PacketError

if TYPE_CHECKING:
    from .network import Host

TCP_HEADER_SIZE = 20
#: Fallback for hosts whose path MTU would not fit a single payload byte.
MIN_MSS = 8
#: Receive window in bytes; also the acceptance window for the blind-
#: injection sequence check.
RECEIVE_WINDOW = 65535
#: Pending-connection (half-open) slots per listener.  A spoofed-source SYN
#: flood fills these; genuine SYNs arriving at a full backlog are dropped,
#: which is what makes the encrypted-transport downgrade attack possible.
DEFAULT_BACKLOG = 16
#: Seconds a half-open connection occupies a backlog slot.
SYN_TIMEOUT = 10.0
#: Default seconds before an unanswered connect attempt fails.
CONNECT_TIMEOUT = 5.0

FLAG_FIN = 0x01
FLAG_SYN = 0x02
FLAG_RST = 0x04
FLAG_ACK = 0x10

_SEQ_MOD = 1 << 32


class TransportError(RuntimeError):
    """Raised when a stream transport is driven in an inconsistent way."""


@dataclass(frozen=True)
class TCPSegment:
    """A TCP segment; encodes to the real 20-byte header layout.

    The checksum field is carried as zero — integrity at the IP layer is
    already modelled by :class:`~repro.netsim.packets.UDPDatagram` for the
    attacks that need it, and nothing in the reproduction tampers with TCP
    payloads below the sequence check.
    """

    src_port: int
    dst_port: int
    seq: int
    ack: int
    flags: int
    payload: bytes = b""

    def encode(self) -> bytes:
        header = (
            self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + (self.seq % _SEQ_MOD).to_bytes(4, "big")
            + (self.ack % _SEQ_MOD).to_bytes(4, "big")
            + bytes([5 << 4, self.flags & 0x3F])
            + RECEIVE_WINDOW.to_bytes(2, "big")
            + b"\x00\x00\x00\x00"
        )
        return header + self.payload

    @classmethod
    def decode(cls, data: bytes) -> TCPSegment:
        if len(data) < TCP_HEADER_SIZE:
            raise PacketError("truncated TCP header")
        offset = (data[12] >> 4) * 4
        if offset < TCP_HEADER_SIZE or offset > len(data):
            raise PacketError("invalid TCP data offset")
        return cls(
            src_port=int.from_bytes(data[0:2], "big"),
            dst_port=int.from_bytes(data[2:4], "big"),
            seq=int.from_bytes(data[4:8], "big"),
            ack=int.from_bytes(data[8:12], "big"),
            flags=data[13] & 0x3F,
            payload=data[offset:],
        )

    @property
    def wire_size(self) -> int:
        return TCP_HEADER_SIZE + len(self.payload)


class ConnectionState(enum.Enum):
    SYN_SENT = "syn-sent"
    SYN_RECEIVED = "syn-received"
    ESTABLISHED = "established"
    CLOSED = "closed"


#: (remote_ip, remote_port, local_port) — how a stack demultiplexes segments.
ConnectionKey = tuple[str, int, int]


class Connection:
    """One endpoint of a TCP-like connection.

    Created by :meth:`TCPStack.connect` (client side, ``SYN_SENT``) or by a
    :class:`Listener` answering a SYN (server side, ``SYN_RECEIVED``).
    Callbacks — ``on_established``, ``on_data``, ``on_close``,
    ``on_failure`` — are plain attributes; :class:`PlainStreamSocket` and
    :class:`SecureChannel` wire them up.
    """

    def __init__(self, stack: TCPStack, local_port: int, remote_ip: str,
                 remote_port: int, isn: int, state: ConnectionState) -> None:
        self.stack = stack
        self.local_port = local_port
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.state = state
        #: Our initial sequence number; the secret a blind injector has to
        #: guess (matching real TCP's off-path protection).
        self.iss = isn
        self.snd_nxt = (isn + 1) % _SEQ_MOD
        #: Next in-order sequence number we expect from the peer.
        self.rcv_nxt: Optional[int] = None
        self._out_of_order: dict[int, bytes] = {}
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Segments that failed the sequence/ack checks — blind injections.
        self.injections_rejected = 0
        self.on_established: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_failure: Optional[Callable[[str], None]] = None
        self._connect_timer = None
        self._connect_timeout = CONNECT_TIMEOUT
        self._opened = state is not ConnectionState.SYN_SENT
        self.mss = stack.mss_for(remote_ip)

    @property
    def key(self) -> ConnectionKey:
        return (self.remote_ip, self.remote_port, self.local_port)

    @property
    def established(self) -> bool:
        return self.state is ConnectionState.ESTABLISHED

    # -- opening -------------------------------------------------------------
    def open(self, fast_open_payload: bytes = b"") -> None:
        """Send the SYN, optionally carrying a TFO-style first flight.

        Carrying data on the SYN is what collapses a warm secure transport
        to UDP parity: the resumption hello plus early-data records ride the
        very first segment, and the server's answer rides its SYN-ACK
        flight.  The SYN-ACK must acknowledge the first-flight bytes too,
        so ``snd_nxt`` advances past them — a blind injector now has to
        guess the ISN *and* the flight length.
        """
        if self.state is not ConnectionState.SYN_SENT or self._opened:
            raise TransportError("connection was already opened")
        self._opened = True
        self._emit(FLAG_SYN, fast_open_payload)
        self.snd_nxt = (self.iss + 1 + len(fast_open_payload)) % _SEQ_MOD
        self._connect_timer = self.stack.simulator.schedule(
            self._connect_timeout, self._on_connect_timeout)

    # -- sending -------------------------------------------------------------
    def send(self, data: bytes) -> None:
        """Send application bytes, segmented to the MSS."""
        if self.state is not ConnectionState.ESTABLISHED:
            raise TransportError(f"cannot send in state {self.state.value}")
        for start in range(0, len(data), self.mss):
            self._emit(FLAG_ACK, data[start:start + self.mss])

    def _emit(self, flags: int, payload: bytes = b"") -> None:
        seq = self.iss if flags & FLAG_SYN else self.snd_nxt
        segment = TCPSegment(
            src_port=self.local_port,
            dst_port=self.remote_port,
            seq=seq,
            ack=self.rcv_nxt if (flags & FLAG_ACK and self.rcv_nxt is not None) else 0,
            flags=flags,
            payload=payload,
        )
        advance = len(payload)
        if flags & (FLAG_SYN | FLAG_FIN):
            advance += 1
        if not flags & FLAG_SYN:
            self.snd_nxt = (self.snd_nxt + advance) % _SEQ_MOD
        self.bytes_sent += len(payload)
        self.stack.transmit(self, segment)

    def close(self) -> None:
        """Send FIN (when established) and tear the connection down."""
        if self.state is ConnectionState.ESTABLISHED:
            self._emit(FLAG_FIN | FLAG_ACK)
        self._teardown(notify_close=False)

    def _teardown(self, notify_close: bool) -> None:
        if self.state is ConnectionState.CLOSED:
            return
        self.state = ConnectionState.CLOSED
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        self.stack.forget(self)
        if notify_close and self.on_close is not None:
            self.on_close()

    def fail(self, reason: str) -> None:
        """Abort the attempt/connection and notify the owner."""
        obs = self.stack.obs
        if obs.enabled:
            obs.metrics.counter("tcp.connection_failures", reason=reason).inc()
            obs.trace.instant("tcp.failure", category="tcp", reason=reason,
                              host=self.stack.host.address,
                              remote=self.remote_ip, port=self.remote_port)
        callback = self.on_failure
        self._teardown(notify_close=False)
        if callback is not None:
            callback(reason)

    def _on_connect_timeout(self) -> None:
        if self.state is ConnectionState.SYN_SENT:
            self.fail("connect timeout")

    # -- receiving -----------------------------------------------------------
    def handle_segment(self, segment: TCPSegment) -> None:
        if segment.flags & FLAG_RST:
            self._handle_rst(segment)
            return
        if self.state is ConnectionState.SYN_SENT:
            self._handle_syn_sent(segment)
        elif self.state is ConnectionState.SYN_RECEIVED:
            self._handle_syn_received(segment)
        elif self.state is ConnectionState.ESTABLISHED:
            self._handle_established(segment)

    def _handle_rst(self, segment: TCPSegment) -> None:
        # A reset is only honoured when it proves knowledge of the secrets a
        # blind attacker lacks: the handshake ack while connecting, the exact
        # expected sequence number afterwards.
        acceptable = (
            segment.ack == self.snd_nxt
            if self.state is ConnectionState.SYN_SENT
            else self.rcv_nxt is not None and segment.seq == self.rcv_nxt)
        if not acceptable:
            self._reject(segment)
            return
        self.fail("connection reset by peer")

    def _handle_syn_sent(self, segment: TCPSegment) -> None:
        if not (segment.flags & FLAG_SYN and segment.flags & FLAG_ACK):
            self._reject(segment)
            return
        if segment.ack != self.snd_nxt:
            # A spoofed SYN-ACK that does not acknowledge our (unobserved)
            # ISN — and, on a fast-open SYN, the first-flight bytes — exactly
            # what an off-path injector would send.
            self._reject(segment)
            return
        self.rcv_nxt = (segment.seq + 1) % _SEQ_MOD
        self.state = ConnectionState.ESTABLISHED
        if self._connect_timer is not None:
            self._connect_timer.cancel()
            self._connect_timer = None
        obs = self.stack.obs
        if obs.enabled:
            obs.metrics.counter("tcp.connections_established", side="client").inc()
            obs.trace.instant("tcp.established", category="tcp", side="client",
                              host=self.stack.host.address,
                              remote=self.remote_ip, port=self.remote_port)
        self._emit(FLAG_ACK)
        if self.on_established is not None:
            self.on_established()

    def _handle_syn_received(self, segment: TCPSegment) -> None:
        if not segment.flags & FLAG_ACK or segment.ack != (self.iss + 1) % _SEQ_MOD:
            self._reject(segment)
            return
        self.state = ConnectionState.ESTABLISHED
        self.stack.promote(self)
        if segment.payload:
            self._handle_established(segment)

    def _handle_established(self, segment: TCPSegment) -> None:
        if segment.flags & FLAG_FIN:
            if segment.seq != self.rcv_nxt:
                self._reject(segment)
                return
            self._teardown(notify_close=True)
            return
        if not segment.payload:
            return  # bare ACK
        distance = (segment.seq - self.rcv_nxt) % _SEQ_MOD
        if distance >= RECEIVE_WINDOW:
            # Out-of-window data: the sequence check that blinds off-path
            # injection into an established stream.
            self._reject(segment)
            return
        self._out_of_order[segment.seq] = segment.payload
        while self.rcv_nxt in self._out_of_order:
            chunk = self._out_of_order.pop(self.rcv_nxt)
            self.rcv_nxt = (self.rcv_nxt + len(chunk)) % _SEQ_MOD
            self.bytes_received += len(chunk)
            if self.on_data is not None:
                self.on_data(chunk)

    def _reject(self, segment: TCPSegment) -> None:
        self.injections_rejected += 1
        self.stack.segments_rejected += 1
        obs = self.stack.obs
        if obs.enabled:
            obs.metrics.counter("tcp.injections_rejected").inc()
            obs.trace.instant("tcp.injection_rejected", category="tcp",
                              host=self.stack.host.address,
                              remote=self.remote_ip, port=self.local_port,
                              state=self.state.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Connection {self.stack.host.address}:{self.local_port} -> "
                f"{self.remote_ip}:{self.remote_port} {self.state.value}>")


class Listener:
    """A passive TCP endpoint with a finite half-open backlog."""

    def __init__(self, stack: TCPStack, port: int,
                 on_connection: Callable[[Connection], None],
                 backlog: int = DEFAULT_BACKLOG,
                 syn_timeout: float = SYN_TIMEOUT,
                 fast_open: bool = False) -> None:
        self.stack = stack
        self.port = port
        self.on_connection = on_connection
        self.backlog = backlog
        self.syn_timeout = syn_timeout
        #: Accept TFO-style data on the SYN itself: the connection is
        #: promoted before the final ACK and the first-flight bytes are
        #: delivered immediately.  This is what makes 0-RTT replayable —
        #: the listener cannot tell a replayed SYN+flight from a fresh one.
        self.fast_open = fast_open
        self.half_open: dict[ConnectionKey, Connection] = {}
        self.connections_accepted = 0
        #: Connections accepted with data on the SYN (fast-open path).
        self.fast_opens_accepted = 0
        #: SYNs dropped because every backlog slot was occupied — the
        #: observable footprint of a SYN flood.
        self.syns_dropped = 0

    def handle_syn(self, src_ip: str, segment: TCPSegment) -> None:
        key = (src_ip, segment.src_port, self.port)
        if key in self.stack.connections:
            return  # duplicate SYN for an in-progress or established flow
        if len(self.half_open) >= self.backlog:
            self.syns_dropped += 1
            self.stack.syns_dropped += 1
            obs = self.stack.obs
            if obs.enabled:
                obs.metrics.counter("tcp.syns_dropped").inc()
                obs.trace.instant("tcp.syn_dropped", category="tcp",
                                  host=self.stack.host.address, port=self.port,
                                  src=src_ip)
            return
        connection = Connection(
            self.stack,
            local_port=self.port,
            remote_ip=src_ip,
            remote_port=segment.src_port,
            isn=self.stack.rng.getrandbits(32),
            state=ConnectionState.SYN_RECEIVED,
        )
        first_flight = segment.payload if self.fast_open else b""
        connection.rcv_nxt = (segment.seq + 1 + len(first_flight)) % _SEQ_MOD
        self.half_open[key] = connection
        self.stack.connections[key] = connection
        connection._emit(FLAG_SYN | FLAG_ACK)
        if first_flight:
            # Fast open: promote before the final ACK so the application can
            # answer in the SYN-ACK's flight, then deliver the early bytes.
            connection.state = ConnectionState.ESTABLISHED
            self.fast_opens_accepted += 1
            self.stack.promote(connection)
            connection.bytes_received += len(first_flight)
            if connection.on_data is not None:
                connection.on_data(first_flight)
            return
        self.stack.simulator.schedule(
            self.syn_timeout, lambda c=connection: self._expire_half_open(c))

    def _expire_half_open(self, connection: Connection) -> None:
        if connection.state is ConnectionState.SYN_RECEIVED:
            connection._teardown(notify_close=False)

    def _promoted(self, connection: Connection) -> None:
        self.half_open.pop(connection.key, None)
        self.connections_accepted += 1
        self.on_connection(connection)

    def _forgotten(self, connection: Connection) -> None:
        self.half_open.pop(connection.key, None)


class TCPStack:
    """Per-host TCP endpoint table; created lazily via ``Host.tcp``."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self.network = host.network
        #: Observability facade, cached off the simulator (segment handling
        #: is a hot path for the encrypted-transport experiments).
        self.obs = host.network.simulator.obs
        self.listeners: dict[int, Listener] = {}
        self.connections: dict[ConnectionKey, Connection] = {}
        self.segments_received = 0
        self.segments_rejected = 0
        self.syns_dropped = 0

    @property
    def simulator(self):
        return self.network.simulator

    @property
    def rng(self):
        return self.network.simulator.rng

    def mss_for(self, remote_ip: str) -> int:
        """Largest segment payload that never IP-fragments on the path."""
        mtu = self.network.effective_mtu(self.host.address, remote_ip)
        return max(mtu - IPV4_HEADER_SIZE - TCP_HEADER_SIZE, MIN_MSS)

    # -- active/passive open ---------------------------------------------------
    def listen(self, port: int, on_connection: Callable[[Connection], None],
               backlog: int = DEFAULT_BACKLOG,
               syn_timeout: float = SYN_TIMEOUT,
               fast_open: bool = False) -> Listener:
        if port in self.listeners:
            raise TransportError(f"port {port} already has a listener")
        listener = Listener(self, port, on_connection, backlog=backlog,
                            syn_timeout=syn_timeout, fast_open=fast_open)
        self.listeners[port] = listener
        return listener

    def connect(self, remote_ip: str, remote_port: int,
                local_port: Optional[int] = None,
                timeout: float = CONNECT_TIMEOUT) -> Connection:
        """Open a connection (SYN goes out immediately); returns it in
        ``SYN_SENT`` so the caller can attach callbacks before any reply."""
        connection = self.create_connection(remote_ip, remote_port,
                                            local_port=local_port, timeout=timeout)
        connection.open()
        return connection

    def create_connection(self, remote_ip: str, remote_port: int,
                          local_port: Optional[int] = None,
                          timeout: float = CONNECT_TIMEOUT) -> Connection:
        """Allocate a ``SYN_SENT`` connection without emitting the SYN.

        Callers that put data on the SYN itself — the 0-RTT resumption
        transport — need the connection object (to compose the first
        flight against its channel) before the segment leaves, so creation
        and :meth:`Connection.open` are split.  Port and ISN draws happen
        here, in :meth:`connect`'s order, keeping seeded runs bit-identical.
        """
        if local_port is None:
            local_port = self._ephemeral_port(remote_ip, remote_port)
        connection = Connection(
            self,
            local_port=local_port,
            remote_ip=remote_ip,
            remote_port=remote_port,
            isn=self.rng.getrandbits(32),
            state=ConnectionState.SYN_SENT,
        )
        connection._connect_timeout = timeout
        key = connection.key
        if key in self.connections:
            raise TransportError(f"connection {key} already exists")
        self.connections[key] = connection
        return connection

    def _ephemeral_port(self, remote_ip: str, remote_port: int) -> int:
        while True:
            port = self.rng.randrange(20000, 60000)
            if (remote_ip, remote_port, port) not in self.connections:
                return port

    # -- segment plumbing ------------------------------------------------------
    def transmit(self, connection: Connection, segment: TCPSegment) -> None:
        self.network.send_packet(
            IPPacket(
                src_ip=self.host.address,
                dst_ip=connection.remote_ip,
                ip_id=self.network.next_ip_id(self.host.address),
                payload=segment.encode(),
                protocol=PROTO_TCP,
            )
        )

    def handle_packet(self, packet: IPPacket) -> None:
        try:
            segment = TCPSegment.decode(packet.payload)
        except PacketError:
            return
        self.segments_received += 1
        connection = self.connections.get(
            (packet.src_ip, segment.src_port, segment.dst_port))
        if connection is not None:
            connection.handle_segment(segment)
            return
        listener = self.listeners.get(segment.dst_port)
        if (listener is not None and segment.flags & FLAG_SYN
                and not segment.flags & FLAG_ACK):
            listener.handle_syn(packet.src_ip, segment)
        # Anything else is dropped silently (see module docstring).

    def promote(self, connection: Connection) -> None:
        if self.obs.enabled:
            self.obs.metrics.counter("tcp.connections_established",
                                     side="server").inc()
            self.obs.trace.instant("tcp.established", category="tcp",
                                   side="server", host=self.host.address,
                                   remote=connection.remote_ip,
                                   port=connection.local_port)
        listener = self.listeners.get(connection.local_port)
        if listener is not None:
            listener._promoted(connection)
        elif connection.on_established is not None:  # pragma: no cover - defensive
            connection.on_established()

    def forget(self, connection: Connection) -> None:
        self.connections.pop(connection.key, None)
        listener = self.listeners.get(connection.local_port)
        if listener is not None:
            listener._forgotten(connection)


# -- application-facing stream sockets ----------------------------------------


class StreamSocket:
    """Uniform byte-stream interface shared by plaintext and TLS channels.

    ``on_ready`` fires when application data may flow (connection
    established, and — for :class:`SecureChannel` — the handshake done);
    ``on_data`` receives ordered plaintext bytes; ``on_failure`` reports
    connect timeouts, resets and handshake failures.
    """

    def __init__(self, connection: Connection) -> None:
        self.connection = connection
        self.on_ready: Optional[Callable[[], None]] = None
        self.on_data: Optional[Callable[[bytes], None]] = None
        self.on_close: Optional[Callable[[], None]] = None
        self.on_failure: Optional[Callable[[str], None]] = None

    @property
    def ready(self) -> bool:
        raise NotImplementedError

    def send(self, data: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        self.connection.close()

    def _fire_ready(self) -> None:
        if self.on_ready is not None:
            self.on_ready()

    def _fire_failure(self, reason: str) -> None:
        if self.on_failure is not None:
            self.on_failure(reason)

    def _fire_close(self) -> None:
        if self.on_close is not None:
            self.on_close()


class PlainStreamSocket(StreamSocket):
    """A cleartext byte stream straight over a :class:`Connection`."""

    def __init__(self, connection: Connection) -> None:
        super().__init__(connection)
        connection.on_established = self._fire_ready
        connection.on_data = self._on_connection_data
        connection.on_close = self._fire_close
        connection.on_failure = self._fire_failure

    @property
    def ready(self) -> bool:
        return self.connection.established

    def send(self, data: bytes) -> None:
        self.connection.send(data)

    def _on_connection_data(self, data: bytes) -> None:
        if self.on_data is not None:
            self.on_data(data)


# -- the TLS model -------------------------------------------------------------

#: The secp256k1 field prime — a fixed, well-known 256-bit prime for the
#: ephemeral Diffie-Hellman exchange.  Model-strength, not production crypto:
#: what matters is that taps and diverted hosts cannot derive the session key
#: from the observed shares.
DH_PRIME = 2**256 - 2**32 - 977
DH_GENERATOR = 5

_REC_CLIENT_HELLO = 1
_REC_SERVER_HELLO = 2
_REC_TICKET = 4
_REC_RESUME_HELLO = 5
_REC_RESUME_ACK = 6
_REC_EARLY_DATA = 7
_REC_ALERT = 21
_REC_APP_DATA = 23


@dataclass(frozen=True)
class SessionTicket:
    """A resumption ticket: an opaque nonce plus the PSK it stands for.

    The nonce travels in cleartext (observers learn it); the PSK is derived
    from the *session key* of the handshake that issued it, which taps never
    see — so holding a recorded nonce does not let an off-path attacker
    forge a resumption.  What it *does* allow is replaying a full recorded
    first flight verbatim, the faithful 0-RTT caveat.
    """

    nonce: bytes
    psk: bytes


class ResumptionTicketStore:
    """Server-side session cache mapping ticket nonces to PSKs.

    ``single_use`` models anti-replay ticket burning: each ticket redeems at
    most once, which defeats 0-RTT replay at the cost of one full handshake
    per replay-suspected connection.  The default (reusable tickets) is the
    deployed-reality configuration the attacker row exploits.
    """

    def __init__(self, single_use: bool = False) -> None:
        self.single_use = single_use
        self._tickets: dict[bytes, bytes] = {}
        self.issued = 0
        self.redeemed = 0
        self.rejected = 0

    def issue(self, nonce: bytes, psk: bytes) -> None:
        self._tickets[nonce] = psk
        self.issued += 1

    def redeem(self, nonce: bytes) -> Optional[bytes]:
        psk = (self._tickets.pop(nonce, None) if self.single_use
               else self._tickets.get(nonce))
        if psk is None:
            self.rejected += 1
        else:
            self.redeemed += 1
        return psk


def certificate_signature(cert_key: str, subject: str, share: int,
                          server_random: bytes) -> bytes:
    """Keyed digest binding a server's ephemeral share to its identity.

    The same modelling idiom as DNSSEC response signing in
    :mod:`repro.defenses.hardening`: the key stands in for the zone's
    certificate/CA key, secret by convention.  Covering the ephemeral share
    and the server random makes the signature useless for replay by an
    impersonator.
    """
    material = f"{cert_key}|{subject}|{share}|{server_random.hex()}"
    return hashlib.sha256(material.encode("ascii")).digest()


def _frame_record(record_type: int, body: bytes) -> bytes:
    return bytes([record_type]) + len(body).to_bytes(2, "big") + body


class _RecordDecoder:
    """Reassembles ``type | len16 | body`` records from stream chunks."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[tuple[int, bytes]]:
        self._buffer += data
        records: list[tuple[int, bytes]] = []
        while len(self._buffer) >= 3:
            length = int.from_bytes(self._buffer[1:3], "big")
            if len(self._buffer) < 3 + length:
                break
            records.append((self._buffer[0], bytes(self._buffer[3:3 + length])))
            del self._buffer[:3 + length]
        return records


class SecureChannel(StreamSocket):
    """A TLS 1.3-flavoured secure byte stream over a :class:`Connection`.

    Client side::

        channel = SecureChannel.client(connection, rng,
                                       expected_identity="pool.ntp.org",
                                       trust_anchor=cert_key)

    Server side (inside a listener's ``on_connection``)::

        channel = SecureChannel.server(connection, rng,
                                       identity="pool.ntp.org",
                                       cert_key=cert_key)

    Handshake cost is one round trip on top of the TCP handshake
    (ClientHello out with the final ACK's flight, ServerHello back).  The
    client rejects a ServerHello whose certificate subject differs from the
    pinned ``expected_identity`` or whose signature does not verify under
    the ``trust_anchor`` — which is exactly what stops a BGP hijacker, who
    can complete a TCP handshake for the diverted address but holds no
    certificate key.  After the handshake, application bytes travel as
    XOR-keystream ciphertext records: opaque to taps.
    """

    def __init__(self, connection: Connection, rng, *, client: bool,
                 identity: Optional[str] = None,
                 cert_key: Optional[str] = None,
                 expected_identity: Optional[str] = None,
                 trust_anchor: Optional[str] = None,
                 ticket: Optional[SessionTicket] = None,
                 on_ticket: Optional[Callable[[SessionTicket], None]] = None,
                 ticket_store: Optional[ResumptionTicketStore] = None) -> None:
        super().__init__(connection)
        self.is_client = client
        self.identity = identity
        self.cert_key = cert_key
        self.expected_identity = expected_identity
        self.trust_anchor = trust_anchor
        self.peer_identity: Optional[str] = None
        self.handshake_complete = False
        #: True once this channel completed a ticket resumption (either side).
        self.resumed = False
        self._rng = rng
        self._decoder = _RecordDecoder()
        self._secret = rng.getrandbits(255) | 1
        self._share = pow(DH_GENERATOR, self._secret, DH_PRIME)
        self._random = rng.getrandbits(256).to_bytes(32, "big")
        self._key: Optional[bytes] = None
        self._send_counter = 0
        self._recv_counter = 0
        self._ticket = ticket
        self._on_ticket = on_ticket
        self._ticket_store = ticket_store
        self._early_key: Optional[bytes] = None
        self._early_send_counter = 0
        self._early_recv_counter = 0
        self._first_flight_sent = False
        connection.on_data = self._on_connection_data
        connection.on_close = self._fire_close
        connection.on_failure = self._fire_failure
        if client and ticket is None:
            if connection.established:
                self._send_client_hello()
            else:
                connection.on_established = self._send_client_hello

    # -- constructors ----------------------------------------------------------
    @classmethod
    def client(cls, connection: Connection, rng, *, expected_identity: str,
               trust_anchor: str, ticket: Optional[SessionTicket] = None,
               on_ticket: Optional[Callable[[SessionTicket], None]] = None,
               ) -> SecureChannel:
        return cls(connection, rng, client=True,
                   expected_identity=expected_identity, trust_anchor=trust_anchor,
                   ticket=ticket, on_ticket=on_ticket)

    @classmethod
    def server(cls, connection: Connection, rng, *, identity: str,
               cert_key: str,
               ticket_store: Optional[ResumptionTicketStore] = None,
               ) -> SecureChannel:
        return cls(connection, rng, client=False, identity=identity,
                   cert_key=cert_key, ticket_store=ticket_store)

    @property
    def ready(self) -> bool:
        return self.handshake_complete and self.connection.established

    # -- handshake -------------------------------------------------------------
    def _send_client_hello(self) -> None:
        body = self._random + self._share.to_bytes(32, "big")
        self.connection.send(_frame_record(_REC_CLIENT_HELLO, body))

    def _handle_client_hello(self, body: bytes) -> None:
        if len(body) != 64 or self.is_client:
            self._abort("malformed ClientHello")
            return
        client_random = body[:32]
        client_share = int.from_bytes(body[32:64], "big")
        subject = (self.identity or "").encode("ascii")
        signature = certificate_signature(self.cert_key or "", self.identity or "",
                                          self._share, self._random)
        hello = (
            self._random
            + self._share.to_bytes(32, "big")
            + len(subject).to_bytes(2, "big") + subject
            + signature
        )
        self.connection.send(_frame_record(_REC_SERVER_HELLO, hello))
        self._derive_key(client_share, client_random, self._random)
        self.handshake_complete = True
        if self._ticket_store is not None:
            # Issue a resumption ticket off the fresh session key.  The RNG
            # draw happens only when a store is attached, so channels without
            # resumption enabled keep their seeded draw sequence unchanged.
            nonce = self._rng.getrandbits(128).to_bytes(16, "big")
            assert self._key is not None
            psk = hashlib.sha256(self._key + nonce).digest()
            self._ticket_store.issue(nonce, psk)
            self.connection.send(_frame_record(_REC_TICKET, nonce))
        self._fire_ready()

    def _handle_server_hello(self, body: bytes) -> None:
        if not self.is_client or len(body) < 66:
            self._abort("malformed ServerHello")
            return
        server_random = body[:32]
        server_share = int.from_bytes(body[32:64], "big")
        subject_length = int.from_bytes(body[64:66], "big")
        if len(body) != 66 + subject_length + 32:
            self._abort("malformed ServerHello")
            return
        subject = body[66:66 + subject_length].decode("ascii", errors="replace")
        signature = body[66 + subject_length:]
        if subject != self.expected_identity:
            self._abort(f"certificate subject {subject!r} is not the pinned "
                        f"identity {self.expected_identity!r}")
            return
        expected = certificate_signature(self.trust_anchor or "", subject,
                                         server_share, server_random)
        if signature != expected:
            self._abort("certificate signature did not verify")
            return
        self.peer_identity = subject
        self._derive_key(server_share, self._random, server_random)
        self.handshake_complete = True
        self._fire_ready()

    # -- 0-RTT resumption ------------------------------------------------------
    def first_flight(self, early_data: bytes = b"") -> bytes:
        """Compose the resumption first flight for a fast-open SYN.

        Returns the wire bytes of a ``ResumeHello`` (ticket nonce + client
        random) followed by an ``EarlyData`` record carrying ``early_data``
        encrypted under the early key.  The early key is derived from the
        PSK and the *client* random only — there is no server contribution
        yet, which is precisely why recorded first flights replay cleanly.
        """
        if not self.is_client or self._ticket is None:
            raise TransportError("first_flight requires a client with a ticket")
        if self._first_flight_sent:
            raise TransportError("first flight was already composed")
        self._first_flight_sent = True
        self._early_key = hashlib.sha256(
            self._ticket.psk + b"early" + self._random).digest()
        hello = (len(self._ticket.nonce).to_bytes(2, "big") + self._ticket.nonce
                 + self._random)
        flight = _frame_record(_REC_RESUME_HELLO, hello)
        if early_data:
            keystream = self._early_keystream(self._early_send_counter,
                                              len(early_data))
            self._early_send_counter += 1
            ciphertext = bytes(a ^ b for a, b in zip(early_data, keystream))
            flight += _frame_record(_REC_EARLY_DATA, ciphertext)
        return flight

    def _handle_ticket(self, body: bytes) -> None:
        if not self.is_client or self._key is None:
            self._abort("unsolicited session ticket")
            return
        psk = hashlib.sha256(self._key + body).digest()
        if self._on_ticket is not None:
            self._on_ticket(SessionTicket(nonce=body, psk=psk))

    def _handle_resume_hello(self, body: bytes) -> None:
        if self.is_client or len(body) < 2:
            self._abort("malformed ResumeHello")
            return
        nonce_length = int.from_bytes(body[:2], "big")
        if len(body) != 2 + nonce_length + 32:
            self._abort("malformed ResumeHello")
            return
        nonce = body[2:2 + nonce_length]
        client_random = body[2 + nonce_length:]
        psk = (self._ticket_store.redeem(nonce)
               if self._ticket_store is not None else None)
        if psk is None:
            self._abort("unknown session ticket")
            return
        self._early_key = hashlib.sha256(psk + b"early" + client_random).digest()
        self._key = hashlib.sha256(psk + client_random + self._random).digest()
        self.resumed = True
        self.handshake_complete = True
        self.connection.send(_frame_record(_REC_RESUME_ACK, self._random))
        self._fire_ready()

    def _handle_resume_ack(self, body: bytes) -> None:
        if not self.is_client or self._ticket is None or len(body) != 32:
            self._abort("malformed ResumeAck")
            return
        self._key = hashlib.sha256(
            self._ticket.psk + self._random + body).digest()
        # The ticket chains back to a handshake that verified the pinned
        # certificate; resumption inherits that authentication.
        self.peer_identity = self.expected_identity
        self.resumed = True
        self.handshake_complete = True
        self._fire_ready()

    def _early_keystream(self, counter: int, length: int) -> bytes:
        assert self._early_key is not None
        stream = bytearray()
        block = 0
        while len(stream) < length:
            stream += hashlib.sha256(
                self._early_key + b"early" + counter.to_bytes(8, "big")
                + block.to_bytes(4, "big")).digest()
            block += 1
        return bytes(stream[:length])

    def _handle_early_data(self, body: bytes) -> None:
        if self.is_client or self._early_key is None:
            self._abort("early data without a resumed session")
            return
        keystream = self._early_keystream(self._early_recv_counter, len(body))
        self._early_recv_counter += 1
        plaintext = bytes(a ^ b for a, b in zip(body, keystream))
        if self.on_data is not None:
            self.on_data(plaintext)

    def _derive_key(self, peer_share: int, client_random: bytes,
                    server_random: bytes) -> None:
        shared = pow(peer_share, self._secret, DH_PRIME)
        self._key = hashlib.sha256(
            shared.to_bytes(32, "big") + client_random + server_random).digest()

    def _abort(self, reason: str) -> None:
        if self.connection.established:
            self.connection.send(_frame_record(_REC_ALERT, reason.encode()))
        self.connection.close()
        self._fire_failure(reason)

    # -- application data --------------------------------------------------------
    def _keystream(self, direction: bytes, counter: int, length: int) -> bytes:
        assert self._key is not None
        stream = bytearray()
        block = 0
        while len(stream) < length:
            stream += hashlib.sha256(
                self._key + direction + counter.to_bytes(8, "big")
                + block.to_bytes(4, "big")).digest()
            block += 1
        return bytes(stream[:length])

    def send(self, data: bytes) -> None:
        if not self.ready:
            raise TransportError("secure channel is not ready")
        direction = b"c2s" if self.is_client else b"s2c"
        keystream = self._keystream(direction, self._send_counter, len(data))
        self._send_counter += 1
        ciphertext = bytes(a ^ b for a, b in zip(data, keystream))
        self.connection.send(_frame_record(_REC_APP_DATA, ciphertext))

    def _handle_app_data(self, body: bytes) -> None:
        if self._key is None:
            self._abort("application data before handshake")
            return
        direction = b"s2c" if self.is_client else b"c2s"
        keystream = self._keystream(direction, self._recv_counter, len(body))
        self._recv_counter += 1
        plaintext = bytes(a ^ b for a, b in zip(body, keystream))
        if self.on_data is not None:
            self.on_data(plaintext)

    # -- record dispatch -----------------------------------------------------------
    def _on_connection_data(self, data: bytes) -> None:
        for record_type, body in self._decoder.feed(data):
            if record_type == _REC_CLIENT_HELLO:
                self._handle_client_hello(body)
            elif record_type == _REC_SERVER_HELLO:
                self._handle_server_hello(body)
            elif record_type == _REC_TICKET:
                self._handle_ticket(body)
            elif record_type == _REC_RESUME_HELLO:
                self._handle_resume_hello(body)
            elif record_type == _REC_RESUME_ACK:
                self._handle_resume_ack(body)
            elif record_type == _REC_EARLY_DATA:
                self._handle_early_data(body)
            elif record_type == _REC_APP_DATA:
                self._handle_app_data(body)
            elif record_type == _REC_ALERT:
                self.connection.close()
                self._fire_failure(body.decode("utf-8", errors="replace"))
