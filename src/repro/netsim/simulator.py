"""Discrete-event simulator used by every substrate in the reproduction.

The paper's attack is a timing interaction between three clocks of behaviour:
the hourly pool-generation schedule of Chronos, the TTL-driven expiry of DNS
cache entries and the per-query race an off-path attacker runs against the
authoritative nameserver.  All three are driven by the same simulated clock,
provided by :class:`Simulator`.

The simulator is intentionally small and deterministic: a binary heap of
timestamped events, a monotonically increasing simulated time, and explicit
seeding of every random decision through a single :class:`random.Random`
instance owned by the simulator.  Determinism matters because the experiment
harness compares attack outcomes across configurations; two runs with the
same seed and the same configuration must produce identical traces.

The heap is a hot path: a single matrix sweep steps through millions of
events, so entries are plain ``(time, sequence, event)`` tuples (tuple
comparison, no per-comparison dataclass ``__lt__``) and the event objects are
``__slots__``-based.  Cancelled events are removed lazily when they surface
at the heap top and compacted in bulk once they outnumber half of the queue,
so long sweeps with many timeout cancellations (every answered DNS query
cancels its timeout) do not accumulate dead heap entries.
"""

from __future__ import annotations

import heapq
import itertools
import random
from collections.abc import Callable
from typing import TYPE_CHECKING, Optional

from ..obs import current as _current_obs

if TYPE_CHECKING:
    from ..obs import Observability


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class _ScheduledEvent:
    """Internal heap payload; ordering lives in the enclosing tuple."""

    __slots__ = ("time", "callback", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        self.fired = False


#: Heap entry: (time, sequence, event).  Events scheduled for the same
#: simulated instant fire in insertion order, which keeps traces stable.
_HeapEntry = tuple[float, int, _ScheduledEvent]


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule` allowing cancellation."""

    __slots__ = ("_event", "_simulator")

    def __init__(self, event: _ScheduledEvent, simulator: Simulator) -> None:
        self._event = event
        self._simulator = simulator

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        event = self._event
        if event.cancelled:
            return
        event.cancelled = True
        if not event.fired:
            self._simulator._note_cancellation()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) due."""
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  Components
        that need randomness (packet loss, server rotation, attacker
        spoofing races) must draw from :attr:`rng` so that the whole
        experiment is reproducible from a single seed.
    start_time:
        Initial simulated time in seconds.  Experiments that care about
        wall-clock-like values (NTP timestamps) typically start at a large
        epoch value; the default of ``0.0`` is fine for everything else.
    """

    #: Compaction trigger: once at least this many cancelled events are
    #: pending *and* they make up half of the heap, the heap is rebuilt
    #: without them.  Small enough that long timeout-heavy sweeps stay lean,
    #: large enough that compaction cost is amortised over many cancels.
    COMPACT_THRESHOLD = 64

    def __init__(self, seed: int = 0, start_time: float = 0.0,
                 obs: Optional[Observability] = None) -> None:
        self._now = float(start_time)
        self._queue: list[_HeapEntry] = []
        self._sequence = itertools.count()
        self._running = False
        self._cancelled_pending = 0
        self.rng = random.Random(seed)
        self.seed = seed
        self.events_processed = 0
        #: Total not-yet-fired events that were cancelled (dead heap entries
        #: created); compaction and lazy pops reclaim exactly these.
        self.events_cancelled = 0
        #: Observability facade: explicit, or whatever is currently
        #: installed (``repro.obs.current()`` — the disabled singleton
        #: unless a capture is active or ``REPRO_TRACE`` is set).  Every
        #: instrumented layer reaches it through its simulator, and trace
        #: timestamps are bound to *this* clock — never wall time — so a
        #: trace is as deterministic as the run it observes.
        self.obs = obs if obs is not None else _current_obs()
        self.obs.bind_clock(lambda: self._now)
        if self.obs.enabled:
            metrics = self.obs.metrics
            self._ctr_executed = metrics.counter("sim.events_executed")
            self._ctr_cancelled = metrics.counter("sim.events_cancelled")
        else:
            self._ctr_executed = None
            self._ctr_cancelled = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def queue_length(self) -> int:
        """Heap entries currently held, including not-yet-reclaimed cancels."""
        return len(self._queue)

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still waiting to fire."""
        return len(self._queue) - self._cancelled_pending

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are rejected: the simulator never travels backwards,
        which is exactly the invariant the system under study (NTP) is trying
        to protect.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        event = _ScheduledEvent(self._now + delay, callback)
        heapq.heappush(self._queue, (event.time, next(self._sequence), event))
        return EventHandle(event, self)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        return self.schedule(when - self._now, callback)

    # -- cancelled-event bookkeeping -----------------------------------------
    def _note_cancellation(self) -> None:
        self.events_cancelled += 1
        self._cancelled_pending += 1
        if self._ctr_cancelled is not None:
            self._ctr_cancelled.inc()
        if (self._cancelled_pending >= self.COMPACT_THRESHOLD
                and self._cancelled_pending * 2 >= len(self._queue)):
            self.compact()

    def compact(self) -> None:
        """Drop every cancelled entry from the heap and re-heapify.

        Called automatically once cancelled entries dominate the queue; also
        callable explicitly by long-running drivers between phases.
        """
        if not self._cancelled_pending:
            return
        reclaimed = self._cancelled_pending
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        obs = self.obs
        if obs.enabled:
            obs.metrics.counter("sim.compactions").inc()
            obs.trace.instant("sim.compact", category="sim",
                              reclaimed=reclaimed, remaining=len(self._queue))

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
            self._cancelled_pending -= 1
        if not queue:
            return None
        return queue[0][0]

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if none is pending."""
        queue = self._queue
        while queue:
            time, _, event = heapq.heappop(queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            self._now = time
            event.fired = True
            callback = event.callback
            event.callback = None  # free the closure promptly
            callback()
            self.events_processed += 1
            if self._ctr_executed is not None:
                self._ctr_executed.inc()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the run stops because of ``until``, the clock is advanced to
        ``until`` even if no event fired at that instant, so that callers can
        rely on ``sim.now`` after the call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    return
                next_time = self.peek_next_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` simulated seconds from the current time."""
        self.run(until=self._now + duration, max_events=max_events)

    def advance(self, duration: float) -> None:
        """Alias of :meth:`run_for`; reads naturally in experiment scripts."""
        self.run_for(duration)
