"""Discrete-event simulator used by every substrate in the reproduction.

The paper's attack is a timing interaction between three clocks of behaviour:
the hourly pool-generation schedule of Chronos, the TTL-driven expiry of DNS
cache entries and the per-query race an off-path attacker runs against the
authoritative nameserver.  All three are driven by the same simulated clock,
provided by :class:`Simulator`.

The simulator is intentionally small and deterministic: a binary heap of
timestamped events, a monotonically increasing simulated time, and explicit
seeding of every random decision through a single :class:`random.Random`
instance owned by the simulator.  Determinism matters because the experiment
harness compares attack outcomes across configurations; two runs with the
same seed and the same configuration must produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


@dataclass(order=True)
class _ScheduledEvent:
    """Internal heap entry.

    Ordering is (time, sequence) so that events scheduled for the same
    simulated instant fire in insertion order, which keeps traces stable.
    """

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule` allowing cancellation."""

    def __init__(self, event: _ScheduledEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if it already fired)."""
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated time at which the event is (or was) due."""
        return self._event.time


class Simulator:
    """A deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  Components
        that need randomness (packet loss, server rotation, attacker
        spoofing races) must draw from :attr:`rng` so that the whole
        experiment is reproducible from a single seed.
    start_time:
        Initial simulated time in seconds.  Experiments that care about
        wall-clock-like values (NTP timestamps) typically start at a large
        epoch value; the default of ``0.0`` is fine for everything else.
    """

    def __init__(self, seed: int = 0, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[_ScheduledEvent] = []
        self._sequence = itertools.count()
        self._running = False
        self.rng = random.Random(seed)
        self.seed = seed
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Negative delays are rejected: the simulator never travels backwards,
        which is exactly the invariant the system under study (NTP) is trying
        to protect.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay}s in the past")
        event = _ScheduledEvent(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        return self.schedule(when - self._now, callback)

    def peek_next_time(self) -> Optional[float]:
        """Time of the next pending (non-cancelled) event, or ``None``."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Run the single next event.  Returns ``False`` if none is pending."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self.events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have been processed.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the run stops because of ``until``, the clock is advanced to
        ``until`` even if no event fired at that instant, so that callers can
        rely on ``sim.now`` after the call.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        processed = 0
        try:
            while True:
                if max_events is not None and processed >= max_events:
                    return
                next_time = self.peek_next_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def run_for(self, duration: float, max_events: Optional[int] = None) -> None:
        """Run for ``duration`` simulated seconds from the current time."""
        self.run(until=self._now + duration, max_events=max_events)

    def advance(self, duration: float) -> None:
        """Alias of :meth:`run_for`; reads naturally in experiment scripts."""
        self.run_for(duration)
