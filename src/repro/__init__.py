"""repro — reproduction of "Pitfalls of Provably Secure Systems in Internet:
The Case of Chronos-NTP" (Jeitner, Shulman, Waidner; DSN-S 2020).

The package is organised by subsystem:

* :mod:`repro.netsim` — discrete-event network simulation (IPv4/UDP,
  fragmentation, BGP, hosts);
* :mod:`repro.dns` — DNS wire format, caching resolver, pool.ntp.org
  nameservers;
* :mod:`repro.ntp` — NTP packets, clocks, servers, the traditional client;
* :mod:`repro.core` — the Chronos client (pool generation, selection, panic
  mode) and its analytical security bounds;
* :mod:`repro.attacks` — the DNS-poisoning vectors and the pool attack of
  the paper, plus time-shift execution;
* :mod:`repro.measurement` — the §II DNS measurement statistics;
* :mod:`repro.analysis` — per-experiment sweeps and tables (see DESIGN.md
  for the experiment index);
* :mod:`repro.experiments` — declarative testbeds, the scenario registry,
  and the parallel multi-seed experiment runner.

Quick start::

    from repro.experiments import ExperimentRunner

    result = ExperimentRunner("chronos_pool_attack", seeds=range(8),
                              base_params={"poison_at_query": 3}).run()
    print(result.success_rate(), result.success_interval().formatted())
"""

from . import analysis, attacks, core, dns, experiments, measurement, netsim, ntp

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "attacks",
    "core",
    "dns",
    "experiments",
    "measurement",
    "netsim",
    "ntp",
    "__version__",
]
